"""Shared fixtures for the pytest-benchmark suite.

Benchmarks regenerate the paper's tables at reduced scale (see DESIGN.md
§3 for the experiment index; `python -m repro.cli` runs the same
experiments at arbitrary scale with paper-vs-measured reporting).  Graphs,
workloads and prebuilt indexes are cached per session so each benchmark
times only its own operation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KReachIndex
from repro.datasets import load
from repro.workloads import random_pairs

#: Scale and workload sizes chosen so the full benchmark suite runs in a
#: few minutes of pure Python.
SCALE = 0.05
QUERIES = 2_000
SLOW_QUERIES = 200  # for the online-BFS baselines

#: One dataset per structural family (metabolic, giant-SCC metabolic,
#: citation DAG, deep XML, shallow semantic).
FAMILY_DATASETS = ("AgroCyc", "aMaze", "ArXiv", "Nasa", "YAGO")

_graphs: dict[str, object] = {}
_pairs: dict[str, np.ndarray] = {}
_indexes: dict[tuple, object] = {}


def graph_for(name: str):
    """Session-cached dataset stand-in."""
    if name not in _graphs:
        _graphs[name] = load(name, scale=SCALE)
    return _graphs[name]


def pairs_for(name: str, count: int = QUERIES) -> np.ndarray:
    """Session-cached query workload."""
    key = name
    if key not in _pairs:
        g = graph_for(name)
        _pairs[key] = random_pairs(g.n, QUERIES, rng=np.random.default_rng(11))
    return _pairs[key][:count]


def cached_index(key: tuple, factory):
    """Session-cached index instance (so query benches skip build cost)."""
    if key not in _indexes:
        _indexes[key] = factory()
    return _indexes[key]


def kreach_for(name: str, k):
    """Session-cached KReachIndex."""
    return cached_index(
        ("kreach", name, k), lambda: KReachIndex(graph_for(name), k)
    )


@pytest.fixture(params=FAMILY_DATASETS)
def dataset_name(request) -> str:
    return request.param
