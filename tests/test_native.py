"""Native kernel tier differential suite.

Pins the dispatch registry's contract (tier selection, env parsing, the
``use`` stack, forced fallback when numba is masked away) and — the part
that actually matters — that every registered kernel computes
bit-identical results across every tier that can run here.  The
``python`` tier executes the exact bodies numba would compile, so this
suite pins the compiled tier's semantics even on hosts without numba;
the CI numba leg re-runs it with ``KREACH_NATIVE=numba``.
"""

import os
import sys

import numpy as np
import pytest

from repro import native
from repro.bitsets import ops
from repro.core.batch import MISSING_WEIGHT, KeyedRowStore
from repro.core.kreach import KReachIndex
from repro.graph.generators import gnp_digraph
from repro.graph.traversal import bfs_distances, bfs_distances_blocked
from repro.workloads import random_pairs

# Tiers whose kernels can execute in this environment.  'python' runs
# the numba bodies uncompiled — the stand-in for the compiled tier on
# numba-less hosts; when numba IS installed, test it for real.
TIERS = ["numpy", "python"] + (["numba"] if native.available() else [])

WIDTHS = [0, 1, 63, 64, 65, 130]


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(native.ENV_VAR, raising=False)


def rng_for(seed):
    return np.random.default_rng(seed)


class TestRegistry:
    def test_all_expected_kernels_registered(self):
        assert native.kernel_names() == (
            "and_any",
            "expand_frontier",
            "gather_and_any",
            "keyed_lookup",
            "or_rows",
            "probe_bits",
            "set_bits",
        )

    def test_requested_parses_env(self, monkeypatch):
        assert native.requested() == "auto"
        for tier in native.TIERS:
            monkeypatch.setenv(native.ENV_VAR, tier.upper())
            assert native.requested() == tier
        monkeypatch.setenv(native.ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="KREACH_NATIVE"):
            native.requested()

    def test_active_resolves_auto(self):
        expected = "numba" if native.available() else "numpy"
        assert native.active() == expected

    def test_env_numba_without_numba_raises(self, monkeypatch):
        if native.available():
            pytest.skip("numba present: the env request is satisfiable")
        monkeypatch.setenv(native.ENV_VAR, "numba")
        with pytest.raises(RuntimeError, match="numba is not importable"):
            native.active()

    def test_use_stack_nests_and_restores(self):
        base = native.active()
        with native.use("numpy"):
            assert native.active() == "numpy"
            with native.use("python"):
                assert native.active() == "python"
            assert native.active() == "numpy"
        assert native.active() == base
        with pytest.raises(ValueError, match="tier"):
            with native.use("turbo"):
                pass

    def test_forced_numba_without_numba_falls_back(self):
        # Per-call preference is advisory: use('numba') on a numba-less
        # host serves numpy instead of raising.
        with native.use("numba"):
            fn, tier = native.resolve("and_any")
            if native.available():
                assert tier == "numba"
            else:
                assert tier == "numpy"
            a = np.array([[1, 0]], dtype=np.uint64)
            assert fn(a, a).tolist() == [True]

    def test_resolve_python_tier_returns_kernel_body(self):
        from repro import native_kernels

        with native.use("python"):
            fn, tier = native.resolve("and_any")
        assert tier == "python"
        assert fn is native_kernels.and_any

    def test_masked_numba_forces_numpy(self, monkeypatch):
        # Simulate a host where numba's import is broken mid-process.
        monkeypatch.setitem(sys.modules, "numba", None)
        native.refresh()
        try:
            assert not native.available()
            assert native.active() == "numpy"
            with native.use("numba"):
                _, tier = native.resolve("and_any")
                assert tier == "numpy"
            info = native.describe()
            assert info["available"] is False
            assert info["numba_version"] is None
        finally:
            monkeypatch.undo()
            native.refresh()

    def test_thread_budget(self):
        cpus = os.cpu_count() or 1
        assert native.thread_budget(1) == cpus
        assert native.thread_budget(cpus) == 1
        assert native.thread_budget(10 * cpus) == 1
        assert native.thread_budget(0) == cpus

    def test_pin_kernel_threads_sets_env(self, monkeypatch):
        monkeypatch.delenv("NUMBA_NUM_THREADS", raising=False)
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        assert native.pin_kernel_threads(3) == 3
        assert os.environ["NUMBA_NUM_THREADS"] == "3"
        assert os.environ["OMP_NUM_THREADS"] == "3"
        assert native.pin_kernel_threads(0) == 1  # floor at one thread

    def test_describe_shape(self):
        info = native.describe()
        assert set(info) == {
            "requested",
            "available",
            "active",
            "numba_version",
            "threading_layer",
            "num_threads",
            "kernels",
        }
        assert set(info["kernels"]) == set(native.kernel_names())
        line = native.describe_line()
        assert "native tier:" in line and "7 kernels" in line


def bit_rows(rng, rows, nbits, density=0.1):
    """A packed uint64 matrix with the given bit density."""
    words = (nbits + 63) // 64
    out = np.zeros((rows, words), dtype=np.uint64)
    if nbits and rows:
        count = max(1, int(density * rows * nbits))
        ops.set_bits(
            out,
            rng.integers(0, rows, size=count),
            rng.integers(0, nbits, size=count),
        )
    return out


class TestKernelDifferentials:
    """Every dispatched kernel: tier X ≡ numpy baseline, bit for bit."""

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_and_any(self, tier, nbits):
        rng = rng_for(nbits + 1)
        rows = 0 if nbits == 0 else 40
        a = bit_rows(rng, rows, max(nbits, 1))[:rows]
        b = bit_rows(rng, rows, max(nbits, 1))[:rows]
        with native.use("numpy"):
            expected = ops.and_any(a, b)
        with native.use(tier):
            got = ops.and_any(a, b)
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_set_bits_and_bit_matrix(self, tier, nbits):
        rng = rng_for(nbits + 2)
        rows, m = 16, 200
        if nbits == 0:
            with native.use(tier):
                out = ops.bit_matrix(
                    np.array([], dtype=np.int64),
                    np.array([], dtype=np.int64),
                    rows,
                    64,
                )
            assert out.shape == (16, 1) and not out.any()
            return
        r = rng.integers(0, rows, size=m)
        c = rng.integers(0, nbits, size=m)
        with native.use("numpy"):
            expected = ops.bit_matrix(r, c, rows, nbits)
        with native.use(tier):
            got = ops.bit_matrix(r, c, rows, nbits)
            inplace = np.zeros_like(expected)
            ops.set_bits(inplace, r, c)
        assert np.array_equal(expected, got)
        assert np.array_equal(expected, inplace)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_probe_bits(self, tier, nbits):
        rng = rng_for(nbits + 3)
        matrix = bit_rows(rng, 24, max(nbits, 1))
        m = 0 if nbits == 0 else 300
        r = rng.integers(0, 24, size=m)
        c = rng.integers(0, max(nbits, 1), size=m)
        with native.use("numpy"):
            expected = ops.probe_bits(matrix, r, c)
        with native.use(tier):
            got = ops.probe_bits(matrix, r, c)
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_or_rows_segmented(self, tier, nbits):
        rng = rng_for(nbits + 4)
        matrix = bit_rows(rng, 32, max(nbits, 1))
        m = 0 if nbits == 0 else 500
        rows = rng.integers(0, 32, size=m)
        owner = np.sort(rng.integers(0, 10, size=m))
        with native.use("numpy"):
            expected = ops.or_rows_segmented(matrix, rows, owner, 10)
        with native.use(tier):
            got = ops.or_rows_segmented(matrix, rows, owner, 10)
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("nbits", WIDTHS)
    def test_gather_and_any(self, tier, nbits):
        rng = rng_for(nbits + 5)
        u = bit_rows(rng, 20, max(nbits, 1))
        t = bit_rows(rng, 20, max(nbits, 1))
        m = 0 if nbits == 0 else 400
        s_idx = rng.integers(0, 20, size=m)
        t_idx = rng.integers(0, 20, size=m)
        with native.use("numpy"):
            expected = native.kernel("gather_and_any")(u, t, s_idx, t_idx)
        with native.use(tier):
            got = native.kernel("gather_and_any")(u, t, s_idx, t_idx)
        assert np.array_equal(expected, got)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("m", [0, 1, 500])
    def test_keyed_lookup(self, tier, m):
        rng = rng_for(m + 6)
        n = 1 << 12
        keys = np.unique(rng.integers(0, n * n, size=300))
        store = KeyedRowStore(keys, rng.integers(1, 50, size=len(keys)), n)
        u = rng.integers(0, n, size=m)
        v = rng.integers(0, n, size=m)
        with native.use("numpy"):
            expected = store.lookup(u, v)
        with native.use(tier):
            got = store.lookup(u, v)
        assert np.array_equal(expected, got)
        if m:
            assert (got == MISSING_WEIGHT).any() or len(keys) >= m

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_expand_frontier_via_blocked_bfs(self, tier, seed):
        g = gnp_digraph(120, 0.04, seed=seed)
        sources = np.arange(0, g.n, 2, dtype=np.int64)
        with native.use("numpy"):
            e_src, e_dst, e_dist = bfs_distances_blocked(g, sources, k=6)
        with native.use(tier):
            g_src, g_dst, g_dist = bfs_distances_blocked(g, sources, k=6)
        assert np.array_equal(e_src, g_src)
        assert np.array_equal(e_dst, g_dst)
        assert np.array_equal(e_dist, g_dist)
        # And against the scalar per-source BFS oracle.
        for s in sources[:8]:
            mask = g_src == s
            oracle = bfs_distances(g, int(s), k=6)
            expected_dst = np.flatnonzero((oracle >= 1) & (oracle <= 6))
            assert np.array_equal(np.sort(g_dst[mask]), expected_dst)
            order = np.argsort(g_dst[mask])
            assert np.array_equal(
                g_dist[mask][order], oracle[expected_dst]
            )


class TestEngineMatrix:
    """engine='native' ≡ engine='auto' ≡ scalar, across hop budgets."""

    @pytest.fixture(scope="class")
    def graph(self):
        return gnp_digraph(90, 0.05, seed=11)

    @pytest.fixture(scope="class")
    def pairs(self, graph):
        return random_pairs(graph.n, 3000, rng=rng_for(12))

    @pytest.mark.parametrize("k", [0, 2, 6, None])
    def test_kreach_native_engine(self, graph, pairs, k):
        idx = KReachIndex(graph, k)
        reference = idx.query_batch(pairs, engine="scalar")
        assert np.array_equal(reference, idx.query_batch(pairs, engine="auto"))
        assert np.array_equal(reference, idx.query_batch(pairs, engine="native"))

    @pytest.mark.parametrize("tier", TIERS)
    def test_kreach_under_forced_tier(self, graph, pairs, tier):
        idx = KReachIndex(graph, 3)
        reference = idx.query_batch(pairs, engine="scalar")
        with native.use(tier):
            assert np.array_equal(reference, idx.query_batch(pairs))

    def test_hkreach_and_dynamic_native_engine(self, graph, pairs):
        from repro.core.dynamic import DynamicKReachIndex
        from repro.core.hkreach import HKReachIndex

        hk = HKReachIndex(graph, 2, 6)
        assert np.array_equal(
            hk.query_batch(pairs, engine="scalar"),
            hk.query_batch(pairs, engine="native"),
        )
        dyn = DynamicKReachIndex(graph, 4)
        dyn.insert_edge(5, 7)
        u0, v0 = next(iter(graph.edges()))
        dyn.delete_edge(int(u0), int(v0))
        assert np.array_equal(
            dyn.query_batch(pairs, engine="scalar"),
            dyn.query_batch(pairs, engine="native"),
        )

    def test_unknown_engine_still_rejected(self, graph, pairs):
        idx = KReachIndex(graph, 2)
        with pytest.raises(ValueError, match="engine"):
            idx.query_batch(pairs, engine="warp")
