"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    cycle_graph,
    gnp_digraph,
    paper_example_graph,
    path_graph,
    random_dag,
)
from repro.graph.traversal import reaches_within_bfs


@pytest.fixture
def paper_graph() -> DiGraph:
    """The Figure-1/Figure-3 worked-example graph."""
    return paper_example_graph()


@pytest.fixture
def paper_ids(paper_graph) -> dict[str, int]:
    """Label -> dense id for the paper graph."""
    return {lab: paper_graph.vertex_id(lab) for lab in "abcdefghij"}


@pytest.fixture
def diamond() -> DiGraph:
    """0 -> {1, 2} -> 3 (the smallest multi-path DAG)."""
    return DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def two_cycle() -> DiGraph:
    """0 <-> 1 plus a tail 1 -> 2."""
    return DiGraph(3, [(0, 1), (1, 0), (1, 2)])


@pytest.fixture(params=[0, 1, 2, 3])
def random_graph(request) -> DiGraph:
    """A small random digraph (one per seed parameter)."""
    rng = np.random.default_rng(request.param)
    n = int(rng.integers(5, 30))
    p = float(rng.uniform(0.02, 0.25))
    return gnp_digraph(n, p, seed=request.param)


def graph_corpus() -> list[DiGraph]:
    """A deterministic corpus of structurally diverse small graphs."""
    return [
        DiGraph(1),
        DiGraph(2, [(0, 1)]),
        path_graph(6),
        cycle_graph(5),
        DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)]),
        random_dag(12, 20, seed=1),
        gnp_digraph(15, 0.12, seed=2),
        gnp_digraph(25, 0.06, seed=3),
        paper_example_graph(),
        DiGraph(3, [(0, 1), (1, 0), (1, 2)]),
        DiGraph(7),  # edgeless
    ]


def brute_force_khop(g: DiGraph, s: int, t: int, k: int | None) -> bool:
    """Ground truth used across all index tests."""
    return reaches_within_bfs(g, s, t, k)


def all_pairs(g: DiGraph):
    """Iterate every (s, t) pair of a small graph."""
    for s in range(g.n):
        for t in range(g.n):
            yield s, t
