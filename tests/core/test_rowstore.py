"""Compressed index-row tests (§4.3's compact hub representation)."""

import numpy as np
import pytest

from repro.core.kreach import KReachIndex
from repro.core.rowstore import CompressedRow, compress_rows
from repro.graph.generators import complete_digraph, gnp_digraph


class TestCompressedRow:
    def test_get_matches_dict(self):
        row = {2: 1, 5: 3, 9: 1, 14: 2}
        c = CompressedRow(row, universe=20)
        for v in range(20):
            assert c.get(v) == row.get(v), v

    def test_default_value(self):
        c = CompressedRow({1: 2}, universe=4)
        assert c.get(3, -7) == -7
        assert c.get(99, -7) == -7  # out of universe

    def test_contains_and_len(self):
        c = CompressedRow({0: 1, 63: 2, 64: 3}, universe=100)
        assert 0 in c and 64 in c and 1 not in c
        assert len(c) == 3

    def test_items_round_trip(self):
        row = {i: (i % 3) + 1 for i in range(0, 50, 7)}
        c = CompressedRow(row, universe=64)
        assert dict(c.items()) == row
        assert set(c.keys()) == set(row)

    def test_weight_levels_sorted(self):
        c = CompressedRow({1: 5, 2: 3, 3: 4}, universe=8)
        assert c.weight_levels() == [3, 4, 5]

    def test_empty_row(self):
        c = CompressedRow({}, universe=10)
        assert len(c) == 0 and c.get(0) is None
        assert list(c.items()) == []

    def test_storage_bytes_positive(self):
        c = CompressedRow({i: 1 for i in range(100)}, universe=4000)
        assert c.storage_bytes() > 0


class TestCompressRows:
    def test_threshold_splits_storage(self):
        rows = {0: {1: 1}, 1: {i: 1 for i in range(10)}}
        out = compress_rows(rows, universe=32, threshold=5)
        assert type(out[0]) is dict
        assert isinstance(out[1], CompressedRow)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            compress_rows({}, universe=4, threshold=0)


class TestCompressedIndex:
    @pytest.mark.parametrize("k", [2, 4, None])
    def test_answers_identical(self, k):
        rng = np.random.default_rng(3)
        g = gnp_digraph(30, 0.15, seed=9)
        plain = KReachIndex(g, k)
        packed = KReachIndex(g, k, cover=plain.cover, compress_rows_at=2)
        for _ in range(300):
            s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
            assert plain.query(s, t) == packed.query(s, t), (k, s, t)

    def test_storage_shrinks_on_dense_cover(self):
        g = complete_digraph(150)
        plain = KReachIndex(g, 2)
        packed = KReachIndex(g, 2, cover=plain.cover, compress_rows_at=50)
        assert packed.storage_bytes() < plain.storage_bytes() / 5

    def test_edge_count_preserved(self):
        g = gnp_digraph(25, 0.2, seed=4)
        plain = KReachIndex(g, 3)
        packed = KReachIndex(g, 3, cover=plain.cover, compress_rows_at=1)
        assert plain.edge_count == packed.edge_count
        assert plain.weighted_edges() == packed.weighted_edges()

    def test_query_cases_unchanged(self):
        g = gnp_digraph(25, 0.2, seed=5)
        plain = KReachIndex(g, 3)
        packed = KReachIndex(g, 3, cover=plain.cover, compress_rows_at=1)
        for s in range(g.n):
            for t in range(g.n):
                assert plain.query_case(s, t) == packed.query_case(s, t)
