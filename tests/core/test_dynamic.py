"""DynamicKReachIndex maintenance tests.

Central invariant: after ANY sequence of insertions and deletions the
dynamic index answers exactly like a k-reach index built from scratch on
the current graph.
"""

import numpy as np
import pytest

from repro.core.dynamic import DynamicKReachIndex
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, path_graph

from tests.conftest import brute_force_khop


def assert_matches_fresh(dyn: DynamicKReachIndex, k):
    g = dyn.to_digraph()
    for s in range(g.n):
        for t in range(g.n):
            expected = brute_force_khop(g, s, t, k)
            assert dyn.query(s, t) == expected, (k, s, t)


class TestBasics:
    def test_negative_k(self):
        with pytest.raises(ValueError):
            DynamicKReachIndex(path_graph(3), -1)

    def test_initial_state_matches_static(self):
        g = gnp_digraph(20, 0.15, seed=1)
        dyn = DynamicKReachIndex(g, 3)
        static = KReachIndex(g, 3)
        for s in range(g.n):
            for t in range(g.n):
                assert dyn.query(s, t) == static.query(s, t)

    def test_insert_connects(self):
        g = DiGraph(4, [(0, 1), (2, 3)])
        dyn = DynamicKReachIndex(g, 3)
        assert not dyn.query(0, 3)
        dyn.insert_edge(1, 2)
        assert dyn.query(0, 3)

    def test_insert_respects_k(self):
        g = DiGraph(5, [(0, 1), (1, 2), (3, 4)])
        dyn = DynamicKReachIndex(g, 2)
        dyn.insert_edge(2, 3)
        assert dyn.query(0, 2)  # still within 2 hops
        assert not dyn.query(0, 4)  # 4 hops away now, k = 2

    def test_duplicate_insert_noop(self):
        g = path_graph(3)
        dyn = DynamicKReachIndex(g, 2)
        before = dyn.edge_count
        dyn.insert_edge(0, 1)
        assert dyn.edge_count == before

    def test_self_loop_ignored(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.insert_edge(1, 1)
        assert not dyn.query(1, 0)

    def test_delete_disconnects(self):
        g = path_graph(4)
        dyn = DynamicKReachIndex(g, None)
        assert dyn.query(0, 3)
        dyn.delete_edge(1, 2)
        assert not dyn.query(0, 3)
        assert dyn.query(0, 1)

    def test_delete_missing_edge_noop(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.delete_edge(2, 0)
        assert dyn.query(0, 2)

    def test_update_out_of_range(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        with pytest.raises(ValueError):
            dyn.insert_edge(0, 9)
        with pytest.raises(ValueError):
            dyn.delete_edge(-1, 0)

    def test_cover_grows_when_uncovered_edge_arrives(self):
        g = DiGraph(4, [(0, 1)])
        dyn = DynamicKReachIndex(g, 2)
        before = dyn.cover_size
        dyn.insert_edge(2, 3)  # neither endpoint covered
        assert dyn.cover_size == before + 1
        assert dyn.query(2, 3)

    def test_to_digraph_snapshot(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.insert_edge(2, 0)
        snap = dyn.to_digraph()
        assert snap.has_edge(2, 0)


class TestRandomSequences:
    @pytest.mark.parametrize("k", [2, 3, 5, None])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_insert_only_sequences(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 18
        g = gnp_digraph(n, 0.05, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        for step in range(25):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            dyn.insert_edge(u, v) if u != v else None
            if step % 5 == 4:
                assert_matches_fresh(dyn, k)
        assert_matches_fresh(dyn, k)

    @pytest.mark.parametrize("k", [2, 4, None])
    @pytest.mark.parametrize("seed", [3, 4])
    def test_mixed_sequences(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 15
        g = gnp_digraph(n, 0.12, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        edges = [(u, v) for u, v in g.edges()]
        for step in range(30):
            if edges and rng.random() < 0.4:
                u, v = edges.pop(int(rng.integers(0, len(edges))))
                dyn.delete_edge(u, v)
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v:
                    dyn.insert_edge(u, v)
                    edges.append((u, v))
            if step % 6 == 5:
                assert_matches_fresh(dyn, k)
        assert_matches_fresh(dyn, k)

    def test_k_zero_stays_trivial(self):
        dyn = DynamicKReachIndex(path_graph(4), 0)
        dyn.insert_edge(0, 2)
        assert not dyn.query(0, 2)
        assert dyn.query(1, 1)

    def test_rebuild_after_churn_matches_static(self):
        rng = np.random.default_rng(9)
        n = 14
        dyn = DynamicKReachIndex(DiGraph(n), 3)
        for _ in range(40):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v:
                dyn.insert_edge(u, v)
        static = KReachIndex(dyn.to_digraph(), 3)
        for s in range(n):
            for t in range(n):
                assert dyn.query(s, t) == static.query(s, t)


class TestFreshStaticDifferential:
    """Satellite invariant: after randomized interleaved insert/delete
    sequences the dynamic index answers exactly like a KReachIndex built
    from scratch on the current graph (not just like brute force)."""

    @pytest.mark.parametrize("k", [2, 3, 5, None])
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_interleaved_matches_fresh_static(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 16
        g = gnp_digraph(n, 0.1, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        edges = list(g.edges())
        for step in range(35):
            if edges and rng.random() < 0.45:
                u, v = edges.pop(int(rng.integers(0, len(edges))))
                dyn.delete_edge(u, v)
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v and (u, v) not in edges:
                    dyn.insert_edge(u, v)
                    edges.append((u, v))
            if step % 7 == 6:
                static = KReachIndex(dyn.to_digraph(), k)
                for s in range(n):
                    for t in range(n):
                        assert dyn.query(s, t) == static.query(s, t), (
                            k, seed, step, s, t,
                        )


class TestFreeze:
    def test_freeze_matches_dynamic_and_fresh(self):
        rng = np.random.default_rng(42)
        n = 18
        dyn = DynamicKReachIndex(gnp_digraph(n, 0.08, seed=42), 3)
        for _ in range(30):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u == v:
                continue
            if rng.random() < 0.3:
                dyn.delete_edge(u, v)
            else:
                dyn.insert_edge(u, v)
        frozen = dyn.freeze()
        fresh = KReachIndex(dyn.to_digraph(), 3)
        for s in range(n):
            for t in range(n):
                assert frozen.query(s, t) == dyn.query(s, t), (s, t)
                assert frozen.query(s, t) == fresh.query(s, t), (s, t)

    def test_freeze_uses_dynamic_cover_and_array_path(self):
        dyn = DynamicKReachIndex(path_graph(6), 2)
        dyn.insert_edge(5, 0)
        frozen = dyn.freeze()
        assert frozen.cover == frozenset(dyn._cover)
        assert frozen.edge_count == dyn.edge_count
        # The frozen index carries a canonical IndexGraph (array storage).
        assert frozen.index_graph.edge_count == dyn.edge_count

    @pytest.mark.parametrize("k", [0, None])
    def test_freeze_edge_modes(self, k):
        dyn = DynamicKReachIndex(path_graph(4), k)
        frozen = dyn.freeze()
        for s in range(4):
            for t in range(4):
                assert frozen.query(s, t) == dyn.query(s, t)

    def test_frozen_index_serializes(self, tmp_path):
        from repro.core.serialize import load_kreach, save_kreach

        dyn = DynamicKReachIndex(gnp_digraph(12, 0.2, seed=7), 3)
        dyn.insert_edge(0, 11)
        frozen = dyn.freeze()
        path = tmp_path / "frozen.npz"
        save_kreach(frozen, path)
        loaded = load_kreach(path)
        assert loaded.weighted_edges() == frozen.weighted_edges()
