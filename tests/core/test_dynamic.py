"""DynamicKReachIndex maintenance tests.

Central invariant: after ANY sequence of insertions and deletions the
dynamic index answers exactly like a k-reach index built from scratch on
the current graph.
"""

import numpy as np
import pytest

from repro.core.dynamic import DynamicKReachIndex
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, path_graph

from tests.conftest import brute_force_khop


def assert_matches_fresh(dyn: DynamicKReachIndex, k):
    g = dyn.to_digraph()
    for s in range(g.n):
        for t in range(g.n):
            expected = brute_force_khop(g, s, t, k)
            assert dyn.query(s, t) == expected, (k, s, t)


class TestBasics:
    def test_negative_k(self):
        with pytest.raises(ValueError):
            DynamicKReachIndex(path_graph(3), -1)

    def test_initial_state_matches_static(self):
        g = gnp_digraph(20, 0.15, seed=1)
        dyn = DynamicKReachIndex(g, 3)
        static = KReachIndex(g, 3)
        for s in range(g.n):
            for t in range(g.n):
                assert dyn.query(s, t) == static.query(s, t)

    def test_insert_connects(self):
        g = DiGraph(4, [(0, 1), (2, 3)])
        dyn = DynamicKReachIndex(g, 3)
        assert not dyn.query(0, 3)
        dyn.insert_edge(1, 2)
        assert dyn.query(0, 3)

    def test_insert_respects_k(self):
        g = DiGraph(5, [(0, 1), (1, 2), (3, 4)])
        dyn = DynamicKReachIndex(g, 2)
        dyn.insert_edge(2, 3)
        assert dyn.query(0, 2)  # still within 2 hops
        assert not dyn.query(0, 4)  # 4 hops away now, k = 2

    def test_duplicate_insert_noop(self):
        g = path_graph(3)
        dyn = DynamicKReachIndex(g, 2)
        before = dyn.edge_count
        dyn.insert_edge(0, 1)
        assert dyn.edge_count == before

    def test_self_loop_ignored(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.insert_edge(1, 1)
        assert not dyn.query(1, 0)

    def test_delete_disconnects(self):
        g = path_graph(4)
        dyn = DynamicKReachIndex(g, None)
        assert dyn.query(0, 3)
        dyn.delete_edge(1, 2)
        assert not dyn.query(0, 3)
        assert dyn.query(0, 1)

    def test_delete_missing_edge_noop(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.delete_edge(2, 0)
        assert dyn.query(0, 2)

    def test_update_out_of_range(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        with pytest.raises(ValueError):
            dyn.insert_edge(0, 9)
        with pytest.raises(ValueError):
            dyn.delete_edge(-1, 0)

    def test_cover_grows_when_uncovered_edge_arrives(self):
        g = DiGraph(4, [(0, 1)])
        dyn = DynamicKReachIndex(g, 2)
        before = dyn.cover_size
        dyn.insert_edge(2, 3)  # neither endpoint covered
        assert dyn.cover_size == before + 1
        assert dyn.query(2, 3)

    def test_to_digraph_snapshot(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.insert_edge(2, 0)
        snap = dyn.to_digraph()
        assert snap.has_edge(2, 0)


class TestRandomSequences:
    @pytest.mark.parametrize("k", [2, 3, 5, None])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_insert_only_sequences(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 18
        g = gnp_digraph(n, 0.05, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        for step in range(25):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            dyn.insert_edge(u, v) if u != v else None
            if step % 5 == 4:
                assert_matches_fresh(dyn, k)
        assert_matches_fresh(dyn, k)

    @pytest.mark.parametrize("k", [2, 4, None])
    @pytest.mark.parametrize("seed", [3, 4])
    def test_mixed_sequences(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 15
        g = gnp_digraph(n, 0.12, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        edges = [(u, v) for u, v in g.edges()]
        for step in range(30):
            if edges and rng.random() < 0.4:
                u, v = edges.pop(int(rng.integers(0, len(edges))))
                dyn.delete_edge(u, v)
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v:
                    dyn.insert_edge(u, v)
                    edges.append((u, v))
            if step % 6 == 5:
                assert_matches_fresh(dyn, k)
        assert_matches_fresh(dyn, k)

    def test_k_zero_stays_trivial(self):
        dyn = DynamicKReachIndex(path_graph(4), 0)
        dyn.insert_edge(0, 2)
        assert not dyn.query(0, 2)
        assert dyn.query(1, 1)

    def test_rebuild_after_churn_matches_static(self):
        rng = np.random.default_rng(9)
        n = 14
        dyn = DynamicKReachIndex(DiGraph(n), 3)
        for _ in range(40):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v:
                dyn.insert_edge(u, v)
        static = KReachIndex(dyn.to_digraph(), 3)
        for s in range(n):
            for t in range(n):
                assert dyn.query(s, t) == static.query(s, t)
