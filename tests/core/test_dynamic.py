"""DynamicKReachIndex maintenance tests.

Central invariant: after ANY sequence of insertions and deletions the
dynamic index answers exactly like a k-reach index built from scratch on
the current graph.
"""

import numpy as np
import pytest

from repro.core.dynamic import DynamicKReachIndex
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, path_graph

from tests.conftest import brute_force_khop


def assert_matches_fresh(dyn: DynamicKReachIndex, k):
    g = dyn.to_digraph()
    for s in range(g.n):
        for t in range(g.n):
            expected = brute_force_khop(g, s, t, k)
            assert dyn.query(s, t) == expected, (k, s, t)


class TestBasics:
    def test_negative_k(self):
        with pytest.raises(ValueError):
            DynamicKReachIndex(path_graph(3), -1)

    def test_initial_state_matches_static(self):
        g = gnp_digraph(20, 0.15, seed=1)
        dyn = DynamicKReachIndex(g, 3)
        static = KReachIndex(g, 3)
        for s in range(g.n):
            for t in range(g.n):
                assert dyn.query(s, t) == static.query(s, t)

    def test_insert_connects(self):
        g = DiGraph(4, [(0, 1), (2, 3)])
        dyn = DynamicKReachIndex(g, 3)
        assert not dyn.query(0, 3)
        dyn.insert_edge(1, 2)
        assert dyn.query(0, 3)

    def test_insert_respects_k(self):
        g = DiGraph(5, [(0, 1), (1, 2), (3, 4)])
        dyn = DynamicKReachIndex(g, 2)
        dyn.insert_edge(2, 3)
        assert dyn.query(0, 2)  # still within 2 hops
        assert not dyn.query(0, 4)  # 4 hops away now, k = 2

    def test_duplicate_insert_noop(self):
        g = path_graph(3)
        dyn = DynamicKReachIndex(g, 2)
        before = dyn.edge_count
        dyn.insert_edge(0, 1)
        assert dyn.edge_count == before

    def test_self_loop_ignored(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.insert_edge(1, 1)
        assert not dyn.query(1, 0)

    def test_delete_disconnects(self):
        g = path_graph(4)
        dyn = DynamicKReachIndex(g, None)
        assert dyn.query(0, 3)
        dyn.delete_edge(1, 2)
        assert not dyn.query(0, 3)
        assert dyn.query(0, 1)

    def test_delete_missing_edge_noop(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.delete_edge(2, 0)
        assert dyn.query(0, 2)

    def test_update_out_of_range(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        with pytest.raises(ValueError):
            dyn.insert_edge(0, 9)
        with pytest.raises(ValueError):
            dyn.delete_edge(-1, 0)

    def test_cover_grows_when_uncovered_edge_arrives(self):
        g = DiGraph(4, [(0, 1)])
        dyn = DynamicKReachIndex(g, 2)
        before = dyn.cover_size
        dyn.insert_edge(2, 3)  # neither endpoint covered
        assert dyn.cover_size == before + 1
        assert dyn.query(2, 3)

    def test_to_digraph_snapshot(self):
        dyn = DynamicKReachIndex(path_graph(3), 2)
        dyn.insert_edge(2, 0)
        snap = dyn.to_digraph()
        assert snap.has_edge(2, 0)


class TestRandomSequences:
    @pytest.mark.parametrize("k", [2, 3, 5, None])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_insert_only_sequences(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 18
        g = gnp_digraph(n, 0.05, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        for step in range(25):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            dyn.insert_edge(u, v) if u != v else None
            if step % 5 == 4:
                assert_matches_fresh(dyn, k)
        assert_matches_fresh(dyn, k)

    @pytest.mark.parametrize("k", [2, 4, None])
    @pytest.mark.parametrize("seed", [3, 4])
    def test_mixed_sequences(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 15
        g = gnp_digraph(n, 0.12, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        edges = [(u, v) for u, v in g.edges()]
        for step in range(30):
            if edges and rng.random() < 0.4:
                u, v = edges.pop(int(rng.integers(0, len(edges))))
                dyn.delete_edge(u, v)
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v:
                    dyn.insert_edge(u, v)
                    edges.append((u, v))
            if step % 6 == 5:
                assert_matches_fresh(dyn, k)
        assert_matches_fresh(dyn, k)

    def test_k_zero_stays_trivial(self):
        dyn = DynamicKReachIndex(path_graph(4), 0)
        dyn.insert_edge(0, 2)
        assert not dyn.query(0, 2)
        assert dyn.query(1, 1)

    def test_rebuild_after_churn_matches_static(self):
        rng = np.random.default_rng(9)
        n = 14
        dyn = DynamicKReachIndex(DiGraph(n), 3)
        for _ in range(40):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v:
                dyn.insert_edge(u, v)
        static = KReachIndex(dyn.to_digraph(), 3)
        for s in range(n):
            for t in range(n):
                assert dyn.query(s, t) == static.query(s, t)


class TestFreshStaticDifferential:
    """Satellite invariant: after randomized interleaved insert/delete
    sequences the dynamic index answers exactly like a KReachIndex built
    from scratch on the current graph (not just like brute force)."""

    @pytest.mark.parametrize("k", [2, 3, 5, None])
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_interleaved_matches_fresh_static(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 16
        g = gnp_digraph(n, 0.1, seed=seed)
        dyn = DynamicKReachIndex(g, k)
        edges = list(g.edges())
        for step in range(35):
            if edges and rng.random() < 0.45:
                u, v = edges.pop(int(rng.integers(0, len(edges))))
                dyn.delete_edge(u, v)
            else:
                u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
                if u != v and (u, v) not in edges:
                    dyn.insert_edge(u, v)
                    edges.append((u, v))
            if step % 7 == 6:
                static = KReachIndex(dyn.to_digraph(), k)
                for s in range(n):
                    for t in range(n):
                        assert dyn.query(s, t) == static.query(s, t), (
                            k, seed, step, s, t,
                        )


class TestFreeze:
    def test_freeze_matches_dynamic_and_fresh(self):
        rng = np.random.default_rng(42)
        n = 18
        dyn = DynamicKReachIndex(gnp_digraph(n, 0.08, seed=42), 3)
        for _ in range(30):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u == v:
                continue
            if rng.random() < 0.3:
                dyn.delete_edge(u, v)
            else:
                dyn.insert_edge(u, v)
        frozen = dyn.freeze()
        fresh = KReachIndex(dyn.to_digraph(), 3)
        for s in range(n):
            for t in range(n):
                assert frozen.query(s, t) == dyn.query(s, t), (s, t)
                assert frozen.query(s, t) == fresh.query(s, t), (s, t)

    def test_freeze_uses_dynamic_cover_and_array_path(self):
        dyn = DynamicKReachIndex(path_graph(6), 2)
        dyn.insert_edge(5, 0)
        frozen = dyn.freeze()
        assert frozen.cover == frozenset(dyn._cover)
        assert frozen.edge_count == dyn.edge_count
        # The frozen index carries a canonical IndexGraph (array storage).
        assert frozen.index_graph.edge_count == dyn.edge_count

    @pytest.mark.parametrize("k", [0, None])
    def test_freeze_edge_modes(self, k):
        dyn = DynamicKReachIndex(path_graph(4), k)
        frozen = dyn.freeze()
        for s in range(4):
            for t in range(4):
                assert frozen.query(s, t) == dyn.query(s, t)

    def test_frozen_index_serializes(self, tmp_path):
        from repro.core.serialize import load_kreach, save_kreach

        dyn = DynamicKReachIndex(gnp_digraph(12, 0.2, seed=7), 3)
        dyn.insert_edge(0, 11)
        frozen = dyn.freeze()
        path = tmp_path / "frozen.npz"
        save_kreach(frozen, path)
        loaded = load_kreach(path)
        assert loaded.weighted_edges() == frozen.weighted_edges()


def oracle_batch(dyn: DynamicKReachIndex, pairs: np.ndarray) -> np.ndarray:
    """BFS ground truth for every pair on the current graph."""
    g = dyn.to_digraph()
    return np.fromiter(
        (brute_force_khop(g, int(s), int(t), dyn.k) for s, t in pairs),
        dtype=bool,
        count=len(pairs),
    )


def drive(dyn, edges, rng, n, steps, on_checkpoint, every=6):
    """Apply a random interleaved insert/delete trace, calling
    ``on_checkpoint`` periodically."""
    for step in range(steps):
        if edges and rng.random() < 0.45:
            u, v = edges.pop(int(rng.integers(0, len(edges))))
            dyn.delete_edge(u, v)
        else:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and (u, v) not in edges:
                dyn.insert_edge(u, v)
                edges.append((u, v))
        if step % every == every - 1:
            on_checkpoint(step)


class TestBatchOverlay:
    """ISSUE-4 acceptance: under randomized interleaved insert/delete
    traces (with compactions mid-trace), ``DynamicKReachIndex.query_batch``
    ≡ ``freeze().query_batch`` ≡ the BFS oracle for k in {2, 6, None}."""

    @pytest.mark.parametrize("k", [2, 6, None])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_batch_matches_freeze_and_oracle(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 16
        g = gnp_digraph(n, 0.12, seed=seed)
        dyn = DynamicKReachIndex(g, k, auto_compact=False)
        edges = list(g.edges())
        pairs = np.array(
            [(s, t) for s in range(n) for t in range(n)], dtype=np.int64
        )

        def check(step):
            expected = oracle_batch(dyn, pairs)
            got = dyn.query_batch(pairs)
            assert np.array_equal(got, expected), (k, seed, step)
            for engine in ("scalar", "bitset"):
                assert np.array_equal(
                    dyn.query_batch(pairs, engine=engine), expected
                ), (k, seed, step, engine)
            if step == 17:
                dyn.compact()  # forced compaction mid-trace
                assert dyn.overlay_rows == 0 and dyn.pending_ops == 0
                assert np.array_equal(dyn.query_batch(pairs), expected)
            frozen = dyn.freeze()  # compaction promoted to the API
            assert np.array_equal(frozen.query_batch(pairs), expected)
            fresh = KReachIndex(dyn.to_digraph(), k)
            assert np.array_equal(fresh.query_batch(pairs), expected)

        drive(dyn, edges, rng, n, 30, check)

    @pytest.mark.parametrize("k", [2, None])
    def test_auto_compaction_stays_correct(self, k):
        rng = np.random.default_rng(5)
        n = 20
        g = gnp_digraph(n, 0.1, seed=5)
        dyn = DynamicKReachIndex(
            g, k, compaction_ratio=0.05, compaction_min_rows=1
        )
        edges = list(g.edges())
        pairs = np.array(
            [(s, t) for s in range(n) for t in range(n)], dtype=np.int64
        )
        drive(
            dyn, edges, rng, n, 30,
            lambda step: np.array_equal(
                dyn.query_batch(pairs), oracle_batch(dyn, pairs)
            ) or pytest.fail(f"mismatch at {step}"),
        )
        assert dyn.compactions > 0

    def test_batch_contract(self):
        dyn = DynamicKReachIndex(path_graph(5), 2)
        out = dyn.query_batch(np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0,) and out.dtype == bool
        with pytest.raises(ValueError):
            dyn.query_batch([(0, 9)])
        with pytest.raises(ValueError):
            dyn.query_batch([(0, 1)], engine="chunked")

    def test_memory_gate_falls_back_and_bitset_forces(self):
        g = gnp_digraph(30, 0.1, seed=2)
        dyn = DynamicKReachIndex(g, 3, bitset_matrix_bytes=0)
        dyn.insert_edge(0, 29)
        pairs = np.array(
            [(s, t) for s in range(30) for t in range(30)], dtype=np.int64
        )
        assert dyn._case4_matrix() is None  # gated off
        expected = oracle_batch(dyn, pairs)
        assert np.array_equal(dyn.query_batch(pairs), expected)
        assert np.array_equal(dyn.query_batch(pairs, engine="bitset"), expected)

    def test_query_case_batch_matches_scalar(self):
        g = gnp_digraph(25, 0.1, seed=4)
        dyn = DynamicKReachIndex(g, 3)
        dyn.insert_edge(1, 2)
        dyn.delete_edge(1, 2)
        pairs = np.array(
            [(s, t) for s in range(25) for t in range(25)], dtype=np.int64
        )
        cases = dyn.query_case_batch(pairs)
        assert cases.dtype == np.uint8
        for (s, t), case in zip(pairs.tolist(), cases.tolist()):
            assert case == dyn.query_case(s, t)

    def test_prepare_batch_chains_and_settles(self):
        g = gnp_digraph(15, 0.15, seed=6)
        dyn = DynamicKReachIndex(g, 3, auto_compact=False)
        for u, v in list(g.edges())[:4]:
            dyn.delete_edge(u, v)
        assert dyn.prepare_batch() is dyn
        assert dyn.pending_repairs == 0  # settling drained the repairs


class TestOverlayLifecycle:
    def test_base_snapshot_is_immutable_between_compactions(self):
        g = gnp_digraph(18, 0.12, seed=7)
        dyn = DynamicKReachIndex(g, 3, auto_compact=False)
        base = dyn.base
        edge_count = base.index_graph.edge_count
        rng = np.random.default_rng(7)
        edges = list(g.edges())
        drive(dyn, edges, rng, 18, 12, lambda step: dyn.query_batch([(0, 1)]))
        assert dyn.base is base  # no compaction ran
        assert base.index_graph.edge_count == edge_count

    def test_overlay_grows_then_compaction_clears(self):
        g = path_graph(10)
        dyn = DynamicKReachIndex(g, 3, auto_compact=False)
        dyn.insert_edge(9, 0)
        dyn.delete_edge(0, 1)
        dyn.query(0, 5)  # settle deferred work into the overlay
        assert dyn.pending_ops == 2
        assert dyn.overlay_rows > 0
        base = dyn.compact()
        assert dyn.base is base
        assert dyn.overlay_rows == 0 and dyn.pending_ops == 0
        assert dyn.compactions == 1
        # compact with nothing pending is a no-op on the snapshot
        assert dyn.compact() is base

    def test_compact_rebuild_refreshes_cover(self):
        g = gnp_digraph(16, 0.1, seed=8)
        dyn = DynamicKReachIndex(g, 3, auto_compact=False)
        rng = np.random.default_rng(8)
        edges = list(g.edges())
        drive(dyn, edges, rng, 16, 16, lambda step: None)
        pairs = np.array(
            [(s, t) for s in range(16) for t in range(16)], dtype=np.int64
        )
        expected = oracle_batch(dyn, pairs)
        dyn.compact(rebuild=True)
        assert np.array_equal(dyn.query_batch(pairs), expected)

    def test_from_base_wraps_frozen_index(self):
        g = gnp_digraph(14, 0.15, seed=9)
        dyn = DynamicKReachIndex(g, 3)
        dyn.insert_edge(0, 13)
        frozen = dyn.freeze()
        again = DynamicKReachIndex.from_base(frozen)
        again.insert_edge(13, 0)
        dyn.insert_edge(13, 0)
        pairs = np.array(
            [(s, t) for s in range(14) for t in range(14)], dtype=np.int64
        )
        assert np.array_equal(again.query_batch(pairs), dyn.query_batch(pairs))

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            DynamicKReachIndex(path_graph(3), 2, compaction_ratio=0.0)
        with pytest.raises(ValueError):
            DynamicKReachIndex(path_graph(3), 2, compaction_min_rows=0)

    def test_pending_log_replay_reproduces_state(self):
        g = gnp_digraph(15, 0.12, seed=10)
        dyn = DynamicKReachIndex(g, 3, auto_compact=False)
        rng = np.random.default_rng(10)
        edges = list(g.edges())
        drive(dyn, edges, rng, 15, 14, lambda step: None)
        log = dyn.pending_log()
        assert log.shape == (dyn.pending_ops, 3)
        other = DynamicKReachIndex.from_base(dyn.base, auto_compact=False)
        other.replay(log)
        pairs = np.array(
            [(s, t) for s in range(15) for t in range(15)], dtype=np.int64
        )
        assert np.array_equal(other.query_batch(pairs), dyn.query_batch(pairs))
        assert other.edge_count == dyn.edge_count
