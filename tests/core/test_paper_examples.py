"""Every claim of the paper's worked Examples 1–4 and Figures 2 & 4,
asserted verbatim against our implementation."""

import pytest

from repro.core.hkreach import HKReachIndex
from repro.core.kreach import KReachIndex
from repro.core.vertex_cover import is_hhop_vertex_cover, is_vertex_cover
from repro.graph.generators import paper_example_graph


@pytest.fixture(scope="module")
def graph():
    return paper_example_graph()


@pytest.fixture(scope="module")
def ids(graph):
    return {lab: graph.vertex_id(lab) for lab in "abcdefghij"}


@pytest.fixture(scope="module")
def kreach3(graph, ids):
    """The 3-reach index of Example 1 (cover {b, d, g, i})."""
    return KReachIndex(graph, 3, cover=frozenset(ids[x] for x in "bdgi"))


@pytest.fixture(scope="module")
def hk25(graph, ids):
    """The (2,5)-reach index of Example 3 (2-hop cover {d, e, g})."""
    return HKReachIndex(graph, 2, 5, cover=frozenset(ids[x] for x in "deg"))


class TestExample1:
    """Example 1: the k-reach graph of Figure 2 (k = 3)."""

    def test_cover_is_valid(self, graph, ids):
        assert is_vertex_cover(graph, {ids[x] for x in "bdgi"})

    def test_figure2_edges_and_weights(self, graph, kreach3):
        labeled = {
            (graph.vertex_label(u), graph.vertex_label(v)): w
            for u, v, w in kreach3.weighted_edges()
        }
        assert labeled == {
            ("b", "d"): 1,
            ("b", "g"): 3,
            ("d", "g"): 2,
            ("d", "i"): 3,
            ("g", "i"): 1,
        }

    def test_b_reaches_g_weight_3(self, kreach3, ids):
        # "b ->3 g in G and thus we have the directed edge (b, g) with
        #  weight 3"
        assert kreach3.weight(ids["b"], ids["g"]) == 3


class TestExample2:
    """Example 2: query processing with the 3-reach index."""

    def test_case1_b_reaches_g(self, kreach3, ids):
        assert kreach3.query_case(ids["b"], ids["g"]) == 1
        assert kreach3.query(ids["b"], ids["g"]) is True

    def test_case1_b_not_reaches_i(self, kreach3, ids):
        # b can reach i in G but only in 4 > k = 3 hops
        assert kreach3.query(ids["b"], ids["i"]) is False

    def test_case2_d_reaches_h(self, kreach3, ids):
        # in-neighbor g of h has weight(d, g) = 2 <= k-1 = 2
        assert kreach3.query_case(ids["d"], ids["h"]) == 2
        assert kreach3.query(ids["d"], ids["h"]) is True

    def test_case2_d_not_reaches_j(self, kreach3, ids):
        # only in-neighbor of j is i, and weight(d, i) = 3 > k-1
        assert kreach3.query(ids["d"], ids["j"]) is False

    def test_case3_a_reaches_d(self, kreach3, ids):
        # out-neighbor b of a has weight(b, d) = 1 <= k-1 = 2
        assert kreach3.query_case(ids["a"], ids["d"]) == 3
        assert kreach3.query(ids["a"], ids["d"]) is True

    def test_case3_a_not_reaches_g(self, kreach3, ids):
        # weight(b, g) = 3 > k-1; g is 4 hops from a
        assert kreach3.query(ids["a"], ids["g"]) is False

    def test_case4_c_reaches_f(self, kreach3, ids):
        # out-neighbor b of c, in-neighbor d of f: weight(b, d) = 1 <= k-2
        assert kreach3.query_case(ids["c"], ids["f"]) == 4
        assert kreach3.query(ids["c"], ids["f"]) is True

    def test_case4_c_not_reaches_h(self, kreach3, ids):
        # h's only in-neighbor g has weight(b, g) = 3 > k-2 = 1;
        # h is 5 hops from c
        assert kreach3.query(ids["c"], ids["h"]) is False


class TestExample3:
    """Example 3: the (2,5)-reach graph of Figure 4."""

    def test_2hop_cover_is_valid(self, graph, ids):
        assert is_hhop_vertex_cover(graph, {ids[x] for x in "deg"}, 2)

    def test_figure4_edges_and_weights(self, graph, hk25):
        labeled = {
            (graph.vertex_label(u), graph.vertex_label(v)): w
            for u, v, w in hk25.weighted_edges()
        }
        assert labeled == {
            ("d", "e"): 1,
            ("d", "g"): 2,
            ("e", "g"): 1,
        }


class TestExample4:
    """Example 4: query processing with the (2,5)-reach index."""

    def test_case1_e_reaches_g(self, hk25, ids):
        assert hk25.query_case(ids["e"], ids["g"]) == 1
        assert hk25.query(ids["e"], ids["g"]) is True

    def test_case1_e_not_reaches_d(self, hk25, ids):
        assert hk25.query(ids["e"], ids["d"]) is False

    def test_case2_d_reaches_h(self, hk25, ids):
        # g in inNei_1(h) with weight(d, g) = 2 <= k-1 = 4
        assert hk25.query_case(ids["d"], ids["h"]) == 2
        assert hk25.query(ids["d"], ids["h"]) is True

    def test_case2_d_not_reaches_a(self, hk25, ids):
        # a has no in-neighbors at all
        assert hk25.query(ids["d"], ids["a"]) is False

    def test_case3_a_reaches_g(self, hk25, ids):
        # d in outNei_2(a) with weight(d, g) = 2 <= k-2 = 3
        assert hk25.query_case(ids["a"], ids["g"]) == 3
        assert hk25.query(ids["a"], ids["g"]) is True

    def test_case4_a_reaches_i(self, hk25, ids):
        # d in outNei_2(a), g in inNei_1(i): weight 2 <= k-2-1 = 2
        assert hk25.query_case(ids["a"], ids["i"]) == 4
        assert hk25.query(ids["a"], ids["i"]) is True

    def test_case4_a_not_reaches_j(self, hk25, ids):
        # g in inNei_2(j): weight(d, g) = 2 > k-2-2 = 1; a reaches j in 6 hops
        assert hk25.query(ids["a"], ids["j"]) is False


class TestWholeTruthTable:
    """Beyond the paper's spot checks: every pair, both indexes."""

    def test_3reach_full_truth_table(self, graph, kreach3):
        from repro.graph.traversal import reaches_within_bfs

        for s in range(graph.n):
            for t in range(graph.n):
                assert kreach3.query(s, t) == reaches_within_bfs(graph, s, t, 3)

    def test_25reach_full_truth_table(self, graph, hk25):
        from repro.graph.traversal import reaches_within_bfs

        for s in range(graph.n):
            for t in range(graph.n):
                assert hk25.query(s, t) == reaches_within_bfs(graph, s, t, 5)
