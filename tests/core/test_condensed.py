"""SCC-condensation preprocessing tests.

Semantics under test (documented on :class:`CondensedKReach`):

* ``k=None`` — exact: condensing cannot change plain reachability, so
  the wrapper must agree with a direct build and with the BFS oracle on
  every pair of every graph, cyclic or not.
* finite ``k`` — "SCC-hop" reachability: intra-SCC moves are free, only
  boundary-crossing edges spend budget.  On a DAG every component is a
  singleton, so this coincides with the direct index; on a cyclic graph
  it is a superset (never a false negative vs the direct index) and must
  equal a k-bounded BFS run on the condensation DAG.
"""

import numpy as np
import pytest

from repro.core import CondensedKReach, KReachIndex
from repro.core.condensed import CondensedKReach as CondensedKReachDirect
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    cycle_graph,
    gnp_digraph,
    random_dag,
)
from repro.graph.scc import condensation
from tests.conftest import all_pairs, brute_force_khop, graph_corpus


def cyclic_corpus():
    return [
        cycle_graph(5),
        DiGraph(3, [(0, 1), (1, 0), (1, 2)]),
        gnp_digraph(18, 0.15, seed=4),  # dense enough for a big SCC
        gnp_digraph(30, 0.08, seed=5),
        DiGraph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]),
    ]


class TestExactUnboundedSemantics:
    def test_matches_direct_and_bfs_on_corpus(self):
        for g in graph_corpus() + cyclic_corpus():
            cond = CondensedKReach(g, None)
            direct = KReachIndex(g, None)
            for s, t in all_pairs(g):
                expect = brute_force_khop(g, s, t, None)
                assert cond.query(s, t) == expect, (g, s, t)
                assert direct.query(s, t) == expect, (g, s, t)

    def test_batch_matches_scalar(self):
        g = gnp_digraph(40, 0.07, seed=6)
        cond = CondensedKReach(g, None).prepare_batch()
        pairs = np.random.default_rng(0).integers(0, g.n, size=(600, 2))
        out = cond.query_batch(pairs)
        for (s, t), got in zip(pairs.tolist(), out.tolist()):
            assert got == cond.query(s, t)


class TestFiniteKSemantics:
    @pytest.mark.parametrize("k", [2, 6])
    def test_equals_direct_on_dags(self, k):
        for g in [random_dag(15, 40, seed=7), random_dag(25, 90, seed=8)]:
            cond = CondensedKReach(g, k)
            direct = KReachIndex(g, k)
            for s, t in all_pairs(g):
                assert cond.query(s, t) == direct.query(s, t), (s, t)

    @pytest.mark.parametrize("k", [2, 6])
    def test_superset_of_direct_on_cyclic(self, k):
        for g in cyclic_corpus():
            cond = CondensedKReach(g, k)
            direct = KReachIndex(g, k)
            for s, t in all_pairs(g):
                if direct.query(s, t):
                    assert cond.query(s, t), (s, t)

    @pytest.mark.parametrize("k", [2, 6])
    def test_scc_hop_oracle_on_cyclic(self, k):
        # The wrapper's finite-k verdict is exactly k-reach over the
        # condensation DAG on component ids.
        for g in cyclic_corpus():
            cond = CondensedKReach(g, k)
            comp = cond.cond.component_of
            for s, t in all_pairs(g):
                expect = brute_force_khop(
                    cond.cond.dag, int(comp[s]), int(comp[t]), k
                )
                assert cond.query(s, t) == expect, (s, t)

    def test_same_component_is_always_reachable(self):
        g = cycle_graph(7)
        cond = CondensedKReach(g, 0)
        assert cond.num_components == 1
        for s, t in all_pairs(g):
            assert cond.query(s, t)


class TestWiring:
    def test_reexported_from_core(self):
        assert CondensedKReach is CondensedKReachDirect

    def test_prebuilt_condensation_reused(self):
        g = gnp_digraph(20, 0.1, seed=9)
        c = condensation(g)
        cond = CondensedKReach(g, None, cond=c)
        assert cond.cond is c

    def test_mismatched_condensation_rejected(self):
        g = gnp_digraph(20, 0.1, seed=9)
        other = condensation(gnp_digraph(10, 0.2, seed=10))
        with pytest.raises(ValueError):
            CondensedKReach(g, None, cond=other)

    def test_kwargs_forwarded_to_index(self):
        g = gnp_digraph(25, 0.1, seed=11)
        cond = CondensedKReach(g, None, storage="wah")
        assert cond.index.index_graph.storage == "wah"
        direct = KReachIndex(g, None)
        pairs = np.random.default_rng(1).integers(0, g.n, size=(300, 2))
        assert np.array_equal(cond.query_batch(pairs), direct.query_batch(pairs))

    def test_storage_bytes_counts_component_map(self):
        g = gnp_digraph(30, 0.1, seed=12)
        cond = CondensedKReach(g, 2)
        assert cond.storage_bytes() >= cond.index.storage_bytes()

    def test_query_out_of_range(self):
        cond = CondensedKReach(gnp_digraph(5, 0.3, seed=13), 2)
        with pytest.raises(IndexError):
            cond.query(0, 99)
