"""Differential tests for the vectorized batch query engine.

The contract under test: for every core index,
``query_batch(pairs)[i] == query(s_i, t_i) == BiBFS oracle(s_i, t_i)``
on every pair, across randomized graphs × hop budgets × row storage
(plain hash rows and WAH-compressed rows), and
``query_case_batch(pairs)[i] == query_case(s_i, t_i)``.  A divergence in
any leg pins the blame: batch≠scalar is a batch-engine bug, scalar≠oracle
is an index bug.
"""

import numpy as np
import pytest

from repro.core.general_k import (
    INFINITE_DISTANCE,
    CoverDistanceOracle,
    ExactKFamily,
    GeometricKReachFamily,
)
from repro.core.hkreach import HKReachIndex
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    gnp_digraph,
    paper_example_graph,
    power_law_digraph,
    random_dag,
    star_graph,
)
from repro.graph.traversal import bidirectional_reaches_within

K_VALUES = [2, 3, 5, None]


def _graphs() -> list[tuple[str, DiGraph]]:
    """Randomized + adversarial graph zoo (seeded, so runs reproduce)."""
    return [
        ("gnp-sparse", gnp_digraph(40, 0.03, seed=11)),
        ("gnp-dense", gnp_digraph(24, 0.15, seed=12)),
        ("power-law", power_law_digraph(45, 160, seed=13)),
        ("dag", random_dag(30, 70, seed=14)),
        ("star", star_graph(25)),
        ("paper", paper_example_graph()),
        ("edgeless", DiGraph(6)),
    ]


def _all_pairs(g: DiGraph) -> np.ndarray:
    return np.array(
        [(s, t) for s in range(g.n) for t in range(g.n)], dtype=np.int64
    )


@pytest.mark.parametrize("name,g", _graphs())
@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("compress_at", [None, 2])
def test_kreach_batch_equals_scalar_equals_oracle(name, g, k, compress_at):
    idx = KReachIndex(g, k, compress_rows_at=compress_at)
    pairs = _all_pairs(g)
    batch = idx.query_batch(pairs)
    assert batch.dtype == bool and batch.shape == (len(pairs),)
    for i, (s, t) in enumerate(pairs):
        s, t = int(s), int(t)
        scalar = idx.query(s, t)
        oracle = bidirectional_reaches_within(g, s, t, k)
        assert batch[i] == scalar == oracle, (name, k, compress_at, s, t)


@pytest.mark.parametrize("name,g", _graphs())
@pytest.mark.parametrize("k", K_VALUES)
def test_kreach_case_batch_equals_scalar(name, g, k):
    idx = KReachIndex(g, k)
    pairs = _all_pairs(g)
    cases = idx.query_case_batch(pairs)
    assert cases.dtype == np.uint8 and cases.shape == (len(pairs),)
    for i, (s, t) in enumerate(pairs):
        assert cases[i] == idx.query_case(int(s), int(t)), (name, k, s, t)


@pytest.mark.parametrize("name,g", _graphs())
@pytest.mark.parametrize("h", [1, 2])
@pytest.mark.parametrize("k", K_VALUES)
def test_hkreach_batch_equals_scalar_equals_oracle(name, g, h, k):
    idx = HKReachIndex(g, h, k, strict=False)
    pairs = _all_pairs(g)
    batch = idx.query_batch(pairs)
    assert batch.dtype == bool and batch.shape == (len(pairs),)
    for i, (s, t) in enumerate(pairs):
        s, t = int(s), int(t)
        scalar = idx.query(s, t)
        oracle = bidirectional_reaches_within(g, s, t, k)
        assert batch[i] == scalar == oracle, (name, h, k, s, t)
    cases = idx.query_case_batch(pairs)
    for i, (s, t) in enumerate(pairs):
        assert cases[i] == idx.query_case(int(s), int(t)), (name, h, k, s, t)


@pytest.mark.parametrize("name,g", _graphs())
def test_oracle_distance_batch_equals_scalar(name, g):
    oracle = CoverDistanceOracle(g)
    pairs = _all_pairs(g)
    dist = oracle.distance_batch(pairs)
    assert dist.dtype == np.float64 and dist.shape == (len(pairs),)
    for i, (s, t) in enumerate(pairs):
        assert dist[i] == oracle.distance(int(s), int(t)), (name, s, t)
    for k in (0, 1, 3, 7):
        within = oracle.reaches_within_batch(pairs, k)
        for i, (s, t) in enumerate(pairs):
            assert within[i] == oracle.reaches_within(int(s), int(t), k)
    classic = oracle.reaches_batch(pairs)
    for i, (s, t) in enumerate(pairs):
        assert classic[i] == (oracle.distance(int(s), int(t)) < INFINITE_DISTANCE)


@pytest.mark.parametrize(
    "name,g",
    [("gnp-sparse", gnp_digraph(25, 0.06, seed=21)), ("paper", paper_example_graph())],
)
@pytest.mark.parametrize("k", [0, 1, 2, 3, 5, 9, 30])
def test_families_batch_equals_scalar(name, g, k):
    geo = GeometricKReachFamily(g, max_k=8, max_k_covers_diameter=True)
    fam = ExactKFamily(g)
    pairs = _all_pairs(g)
    geo_batch = geo.reaches_within_batch(pairs, k)
    fam_batch = fam.reaches_within_batch(pairs, k)
    for i, (s, t) in enumerate(pairs):
        s, t = int(s), int(t)
        assert geo_batch[i] == geo.reaches_within(s, t, k), (name, k, s, t)
        assert fam_batch[i] == fam.reaches_within(s, t, k), (name, k, s, t)


class TestBatchContract:
    """Shape/dtype/validation edges of the batch API."""

    @pytest.fixture(scope="class")
    def idx(self):
        return KReachIndex(gnp_digraph(20, 0.1, seed=31), 3)

    def test_empty_input(self, idx):
        for empty in ([], np.empty((0, 2), dtype=np.int64)):
            out = idx.query_batch(empty)
            assert out.shape == (0,) and out.dtype == bool
            cases = idx.query_case_batch(empty)
            assert cases.shape == (0,) and cases.dtype == np.uint8

    def test_list_of_tuples_accepted(self, idx):
        out = idx.query_batch([(0, 1), (5, 5), (3, 7)])
        assert out.shape == (3,)
        assert out[1]  # s == t is always reachable

    def test_out_of_range_raises(self, idx):
        with pytest.raises(ValueError):
            idx.query_batch([(0, 99)])
        with pytest.raises(ValueError):
            idx.query_batch([(-1, 0)])
        with pytest.raises(ValueError):
            idx.query_case_batch([(0, 99)])

    def test_malformed_shape_raises(self, idx):
        with pytest.raises(ValueError):
            idx.query_batch([(0, 1, 2)])

    def test_k_zero_only_self_pairs(self):
        g = gnp_digraph(10, 0.3, seed=32)
        idx = KReachIndex(g, 0)
        pairs = _all_pairs(g)
        out = idx.query_batch(pairs)
        assert np.array_equal(out, pairs[:, 0] == pairs[:, 1])

    def test_prepare_batch_is_idempotent_and_chains(self):
        g = gnp_digraph(15, 0.1, seed=33)
        idx = KReachIndex(g, 2)
        assert idx.prepare_batch() is idx
        store = idx._keyed()
        idx.prepare_batch()
        assert idx._keyed() is store

    def test_batch_order_follows_input(self, idx):
        pairs = _all_pairs(idx.graph)
        rng = np.random.default_rng(34)
        perm = rng.permutation(len(pairs))
        out = idx.query_batch(pairs)
        assert np.array_equal(idx.query_batch(pairs[perm]), out[perm])


class TestDeduplicatedDispatch:
    """The in-batch dedup/case-grouping micro-opt stays bit-identical."""

    def test_duplicate_heavy_batch_all_engines(self):
        g = gnp_digraph(40, 0.1, seed=41)
        rng = np.random.default_rng(41)
        base = rng.integers(0, g.n, size=(40, 2), dtype=np.int64)
        dup = base[rng.integers(0, len(base), size=2500)]
        for k in (2, 6, None):
            idx = KReachIndex(g, k)
            expected = idx.query_batch(dup, engine="scalar")
            for engine in ("auto", "bitset", "chunked"):
                assert np.array_equal(
                    idx.query_batch(dup, engine=engine), expected
                ), (k, engine)

    def test_duplicate_heavy_hkreach(self):
        g = gnp_digraph(40, 0.1, seed=42)
        rng = np.random.default_rng(42)
        base = rng.integers(0, g.n, size=(30, 2), dtype=np.int64)
        dup = base[rng.integers(0, len(base), size=1500)]
        idx = HKReachIndex(g, 2, 6)
        expected = idx.query_batch(dup, engine="scalar")
        assert np.array_equal(idx.query_batch(dup, engine="bitset"), expected)
        assert np.array_equal(idx.query_batch(dup, engine="auto"), expected)

    def test_dedup_runs_kernel_once_per_distinct_pair(self, monkeypatch):
        g = gnp_digraph(40, 0.1, seed=43)
        idx = KReachIndex(g, 6)
        dup = np.tile(np.array([[1, 2], [3, 4]], dtype=np.int64), (500, 1))
        seen = {}
        original = KReachIndex._query_batch_arrays

        def spy(self, s, t, engine):
            seen["m"] = len(s)
            return original(self, s, t, engine)

        monkeypatch.setattr(KReachIndex, "_query_batch_arrays", spy)
        out = idx.query_batch(dup)
        assert seen["m"] == 2  # kernels saw only the distinct pairs
        assert len(out) == len(dup)
