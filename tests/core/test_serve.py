"""QueryServer differential suite.

Pins the serving tier's contract: for every worker count and hop budget,
``QueryServer.query_batch`` over a v4 file is bit-identical to the
in-memory engine and to the BFS oracle — including across slot-sized
sharding, pipelined submit/collect, duplicate-heavy batches, and a
worker killed (and revived) mid-stream.
"""

import numpy as np
import pytest

from repro.baselines import BfsIndex
from repro.core.kreach import KReachIndex
from repro.core.serialize import save_mmap
from repro.core.serve import QueryServer
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(80, 0.05, seed=21)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.n, 4000, rng=np.random.default_rng(3))


def serve_file(tmp_path, graph, k):
    index = KReachIndex(graph, k)
    path = tmp_path / f"k{k}.kr4"
    save_mmap(index, path)
    return index, path


class TestDifferential:
    @pytest.mark.parametrize("k", [2, 6, None])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_server_vs_inmemory_vs_bfs(self, tmp_path, graph, pairs, k, workers):
        index, path = serve_file(tmp_path, graph, k)
        expected = index.query_batch(pairs)
        # BFS oracle on a subsample (the slow reference).
        bfs = BfsIndex(graph)
        sub = pairs[:300]
        oracle = np.array(
            [
                bfs.reaches(int(s), int(t))
                if k is None
                else bfs.reaches_within(int(s), int(t), k)
                for s, t in sub.tolist()
            ]
        )
        assert np.array_equal(expected[:300], oracle)
        with QueryServer(path, workers=workers, slot_pairs=512) as server:
            assert np.array_equal(server.query_batch(pairs), expected)

    def test_mid_stream_worker_restart(self, tmp_path, graph, pairs):
        index, path = serve_file(tmp_path, graph, 6)
        expected = index.query_batch(pairs)
        with QueryServer(path, workers=2, slot_pairs=256) as server:
            assert np.array_equal(server.query_batch(pairs), expected)
            server.restart_worker(0)  # graceful mid-stream restart
            assert np.array_equal(server.query_batch(pairs), expected)
            # Hard kill with a ticket in flight: the supervisor must
            # revive the worker and re-dispatch its shards.
            ticket = server.submit(pairs)
            server._workers[1].process.kill()
            assert np.array_equal(server.collect(ticket), expected)
            assert server.stats()["restarts"] >= 2

    def test_pipelined_submit_collect(self, tmp_path, graph, pairs):
        index, path = serve_file(tmp_path, graph, 2)
        expected = index.query_batch(pairs)
        shards = np.array_split(pairs, 7)
        with QueryServer(path, workers=2, slot_pairs=128) as server:
            tickets = [server.submit(sh) for sh in shards]
            parts = [server.collect(t) for t in reversed(tickets)]
            got = np.concatenate(list(reversed(parts)))
        assert np.array_equal(got, expected)

    def test_duplicate_heavy_batch(self, tmp_path, graph):
        index, path = serve_file(tmp_path, graph, 6)
        rng = np.random.default_rng(5)
        base = random_pairs(graph.n, 50, rng=rng)
        dup = base[rng.integers(0, len(base), size=3000)]
        expected = index.query_batch(dup)
        with QueryServer(path, workers=2, slot_pairs=512) as server:
            assert np.array_equal(server.query_batch(dup), expected)

    def test_worker_exception_fails_ticket_not_pool(
        self, tmp_path, graph, pairs, monkeypatch
    ):
        """An in-worker kernel error surfaces at collect(); the slot is
        recovered and the pool stays serviceable."""
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to inject a fault into workers")
        index, path = serve_file(tmp_path, graph, 6)
        expected = index.query_batch(pairs)

        def boom(self, p, *, engine="auto"):
            raise RuntimeError("injected kernel failure")

        # Patch before the fork so the workers inherit the fault; undo
        # immediately so the parent (and any revived worker) is clean.
        monkeypatch.setattr(KReachIndex, "query_batch", boom)
        server = QueryServer(path, workers=1, slot_pairs=512, prepare=False)
        monkeypatch.undo()
        with server:
            with pytest.raises(RuntimeError, match="injected kernel failure"):
                server.query_batch(pairs)
            # The failed ticket's slots were recovered; a restart forks a
            # clean worker and the same pool serves the batch correctly.
            server.restart_worker(0)
            assert np.array_equal(server.query_batch(pairs), expected)

    def test_poison_shard_fails_ticket_after_retry_cap(
        self, tmp_path, graph, pairs, monkeypatch
    ):
        """A shard that deterministically kills its worker must error out
        at collect() after the retry cap, never revive-loop forever."""
        import multiprocessing as mp
        import os as os_mod

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork to inject a fault into workers")

        def die(self, p, *, engine="auto"):
            os_mod._exit(1)  # simulate an OOM kill mid-shard

        # The patch stays active through the revive attempts, so every
        # respawned worker (forked from the patched parent) dies too.
        monkeypatch.setattr(KReachIndex, "query_batch", die)
        _, path = serve_file(tmp_path, graph, 6)
        with QueryServer(
            path, workers=1, slot_pairs=1 << 15, prepare=False
        ) as server:
            with pytest.raises(RuntimeError, match="re-dispatched"):
                server.query_batch(pairs)
            assert server.restarts >= 2
        monkeypatch.undo()

    def test_engine_override(self, tmp_path, graph, pairs):
        index, path = serve_file(tmp_path, graph, 6)
        expected = index.query_batch(pairs)
        with QueryServer(path, workers=2) as server:
            for engine in ("scalar", "bitset", "chunked"):
                assert np.array_equal(
                    server.query_batch(pairs, engine=engine), expected
                ), engine


class TestApiContract:
    def test_empty_batch(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with QueryServer(path, workers=1) as server:
            out = server.query_batch(np.empty((0, 2), dtype=np.int64))
            assert out.shape == (0,) and out.dtype == bool

    def test_out_of_range_raises_in_parent(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with QueryServer(path, workers=1) as server:
            with pytest.raises(ValueError, match="out of range"):
                server.query_batch([(0, graph.n)])

    def test_unknown_engine_raises(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with QueryServer(path, workers=1) as server:
            with pytest.raises(ValueError, match="engine"):
                server.submit([(0, 1)], engine="warp")

    def test_unknown_default_engine_rejected_at_construction(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with pytest.raises(ValueError, match="engine"):
            QueryServer(path, workers=1, engine="bitse")

    def test_bad_worker_count(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with pytest.raises(ValueError, match="workers"):
            QueryServer(path, workers=0)

    def test_closed_server_rejects_queries(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        server = QueryServer(path, workers=1)
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.query_batch([(0, 1)])

    def test_unknown_ticket(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with QueryServer(path, workers=1) as server:
            with pytest.raises(KeyError):
                server.collect(999)

    def test_stats_counters(self, tmp_path, graph, pairs):
        index, path = serve_file(tmp_path, graph, 2)
        with QueryServer(path, workers=2) as server:
            server.query_batch(pairs)
            stats = server.stats()
            assert stats["pairs_served"] == len(pairs)
            assert stats["outstanding_tickets"] == 0
            assert stats["workers"] == 2

    def test_case_shard_covers_every_position(self, tmp_path, graph, pairs):
        """The case-code pre-split partitions input positions exactly."""
        _, path = serve_file(tmp_path, graph, 2)
        with QueryServer(path, workers=3) as server:
            flags = server.index._flags()
            from repro.core.batch import case_codes

            s, t = pairs[:, 0], pairs[:, 1]
            shares = server._shard(case_codes(flags[s], flags[t]))
            assert len(shares) == 3
            merged = np.concatenate(shares)
            assert len(merged) == len(pairs)
            assert np.array_equal(np.sort(merged), np.arange(len(pairs)))
