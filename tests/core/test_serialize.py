"""Index serialization round-trip tests."""

import numpy as np
import pytest

from repro.core.kreach import KReachIndex
from repro.core.serialize import load_kreach, save_kreach
from repro.graph.generators import gnp_digraph, paper_example_graph, path_graph


class TestRoundTrip:
    @pytest.mark.parametrize("k", [0, 2, 5, None])
    def test_answers_identical(self, tmp_path, k):
        g = gnp_digraph(30, 0.12, seed=2)
        index = KReachIndex(g, k)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.k == index.k
        assert loaded.cover == index.cover
        assert loaded.weighted_edges() == index.weighted_edges()
        for s in range(g.n):
            for t in range(g.n):
                assert loaded.query(s, t) == index.query(s, t), (k, s, t)

    def test_graph_embedded(self, tmp_path):
        g = path_graph(8)
        index = KReachIndex(g, 3)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.graph == g

    def test_paper_example_round_trip(self, tmp_path):
        g = paper_example_graph()
        ids = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
        index = KReachIndex(g, 3, cover=frozenset(ids[x] for x in "bdgi"))
        path = tmp_path / "paper.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.weighted_edges() == index.weighted_edges()
        assert loaded.query(ids["c"], ids["f"]) is True
        assert loaded.query(ids["c"], ids["h"]) is False

    def test_load_with_compression(self, tmp_path):
        g = gnp_digraph(25, 0.25, seed=3)
        index = KReachIndex(g, 2)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path, compress_rows_at=2)
        for s in range(g.n):
            for t in range(g.n):
                assert loaded.query(s, t) == index.query(s, t)

    def test_compressed_index_saves(self, tmp_path):
        g = gnp_digraph(25, 0.25, seed=4)
        index = KReachIndex(g, 2, compress_rows_at=2)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.weighted_edges() == index.weighted_edges()

    def test_version_check(self, tmp_path):
        g = path_graph(4)
        index = KReachIndex(g, 2)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        # corrupt the version field
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_kreach(path)


class TestLoadValidation:
    def test_corrupted_index_arrays_rejected(self, tmp_path):
        g = gnp_digraph(20, 0.15, seed=6)
        index = KReachIndex(g, 3)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        data = dict(np.load(path))
        data["index_targets"] = data["index_targets"][::-1].copy()  # unsorted rows
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="ascending|indptr|range"):
            load_kreach(path)

    def test_truncated_indptr_rejected(self, tmp_path):
        g = gnp_digraph(20, 0.15, seed=6)
        index = KReachIndex(g, 3)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        data = dict(np.load(path))
        data["index_indptr"] = data["index_indptr"][:-2].copy()
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_kreach(path)


# ----------------------------------------------------------------------
# v3 dynamic dumps: base snapshot + replayable delta log
# ----------------------------------------------------------------------
from repro.core.dynamic import DynamicKReachIndex  # noqa: E402
from repro.core.serialize import load_dynamic, save_dynamic  # noqa: E402


def churned_dynamic(k=3, *, n=20, seed=3, steps=25, auto_compact=False):
    """A dynamic index with a non-trivial overlay and pending log."""
    g = gnp_digraph(n, 0.12, seed=seed)
    dyn = DynamicKReachIndex(g, k, auto_compact=auto_compact)
    rng = np.random.default_rng(seed)
    edges = list(g.edges())
    for _ in range(steps):
        if edges and rng.random() < 0.4:
            u, v = edges.pop(int(rng.integers(0, len(edges))))
            dyn.delete_edge(u, v)
        else:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and (u, v) not in edges:
                dyn.insert_edge(u, v)
                edges.append((u, v))
    return dyn


def tampered_copy(path, out_path, **overrides):
    """Rewrite a dump with some fields replaced."""
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    payload.update(overrides)
    np.savez_compressed(out_path, **payload)
    return out_path


class TestDynamicRoundTrip:
    @pytest.mark.parametrize("k", [2, 3, None])
    def test_mid_churn_roundtrip(self, tmp_path, k):
        dyn = churned_dynamic(k)
        assert dyn.pending_ops > 0  # the dump must carry a real log
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        loaded = load_dynamic(path)
        n = dyn.n
        pairs = np.array(
            [(s, t) for s in range(n) for t in range(n)], dtype=np.int64
        )
        assert np.array_equal(loaded.query_batch(pairs), dyn.query_batch(pairs))
        assert loaded.pending_ops == dyn.pending_ops
        assert loaded.cover_size == dyn.cover_size
        assert loaded.edge_count == dyn.edge_count
        assert loaded.compaction_ratio == dyn.compaction_ratio
        assert loaded.auto_compact == dyn.auto_compact
        # the loaded index keeps serving updates
        loaded.insert_edge(0, n - 1)
        dyn.insert_edge(0, n - 1)
        assert np.array_equal(loaded.query_batch(pairs), dyn.query_batch(pairs))

    def test_settled_roundtrip_has_empty_log(self, tmp_path):
        dyn = churned_dynamic(3)
        dyn.compact()
        path = tmp_path / "settled.npz"
        save_dynamic(dyn, path)
        with np.load(path) as data:
            assert int(data["log_count"]) == 0
        loaded = load_dynamic(path)
        assert loaded.pending_ops == 0
        pairs = np.array(
            [(s, t) for s in range(dyn.n) for t in range(dyn.n)], dtype=np.int64
        )
        assert np.array_equal(loaded.query_batch(pairs), dyn.query_batch(pairs))

    def test_version_cross_errors(self, tmp_path):
        dyn = churned_dynamic(3)
        dpath = tmp_path / "dyn.npz"
        save_dynamic(dyn, dpath)
        spath = tmp_path / "static.npz"
        save_kreach(dyn.freeze(), spath)
        with pytest.raises(ValueError, match="load_kreach"):
            load_dynamic(spath)
        with pytest.raises(ValueError, match="load_dynamic"):
            load_kreach(dpath)


class TestDynamicCorruption:
    def test_truncated_file(self, tmp_path):
        dyn = churned_dynamic(3)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        raw = path.read_bytes()
        trunc = tmp_path / "trunc.npz"
        trunc.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            load_dynamic(trunc)

    def test_log_count_mismatch(self, tmp_path):
        dyn = churned_dynamic(3)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        with np.load(path) as data:
            log = data["log"]
        bad = tampered_copy(path, tmp_path / "bad.npz", log=log[:-1])
        with pytest.raises(ValueError, match="truncated delta log"):
            load_dynamic(bad)

    def test_unknown_op_code(self, tmp_path):
        dyn = churned_dynamic(3)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        with np.load(path) as data:
            log = data["log"].copy()
        log[0, 0] = 7
        bad = tampered_copy(path, tmp_path / "badop.npz", log=log)
        with pytest.raises(ValueError, match="unknown op code"):
            load_dynamic(bad)

    def test_log_vertex_out_of_range(self, tmp_path):
        dyn = churned_dynamic(3)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        with np.load(path) as data:
            log = data["log"].copy()
        log[0, 1] = dyn.n + 5
        bad = tampered_copy(path, tmp_path / "badv.npz", log=log)
        with pytest.raises(ValueError, match="out of range"):
            load_dynamic(bad)

    def test_corrupt_base_csr_rejected(self, tmp_path):
        dyn = churned_dynamic(3)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        with np.load(path) as data:
            indptr = data["index_indptr"].copy()
        if len(indptr) > 1:
            indptr[1] = -4  # breaks monotonicity / bounds
        bad = tampered_copy(path, tmp_path / "badcsr.npz", index_indptr=indptr)
        with pytest.raises(ValueError):
            load_dynamic(bad)

    def test_missing_field(self, tmp_path):
        dyn = churned_dynamic(3)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        payload.pop("log")
        bad = tmp_path / "missing.npz"
        np.savez_compressed(bad, **payload)
        with pytest.raises(ValueError, match="missing field"):
            load_dynamic(bad)

    def test_bitset_matrix_bytes_roundtrips(self, tmp_path):
        g = gnp_digraph(20, 0.15, seed=4)
        dyn = DynamicKReachIndex(g, 3, bitset_matrix_bytes=0)
        dyn.insert_edge(0, 19)
        assert dyn._case4_matrix() is None  # ceiling gates the matrix off
        path = tmp_path / "gated.npz"
        save_dynamic(dyn, path)
        loaded = load_dynamic(path)
        assert loaded.bitset_matrix_bytes == 0
        assert loaded.base.bitset_matrix_bytes == 0
        assert loaded._case4_matrix() is None  # still gated after reload
