"""Index serialization round-trip tests."""

import numpy as np
import pytest

from repro.core.kreach import KReachIndex
from repro.core.serialize import load_kreach, save_kreach
from repro.graph.generators import gnp_digraph, paper_example_graph, path_graph


class TestRoundTrip:
    @pytest.mark.parametrize("k", [0, 2, 5, None])
    def test_answers_identical(self, tmp_path, k):
        g = gnp_digraph(30, 0.12, seed=2)
        index = KReachIndex(g, k)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.k == index.k
        assert loaded.cover == index.cover
        assert loaded.weighted_edges() == index.weighted_edges()
        for s in range(g.n):
            for t in range(g.n):
                assert loaded.query(s, t) == index.query(s, t), (k, s, t)

    def test_graph_embedded(self, tmp_path):
        g = path_graph(8)
        index = KReachIndex(g, 3)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.graph == g

    def test_paper_example_round_trip(self, tmp_path):
        g = paper_example_graph()
        ids = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
        index = KReachIndex(g, 3, cover=frozenset(ids[x] for x in "bdgi"))
        path = tmp_path / "paper.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.weighted_edges() == index.weighted_edges()
        assert loaded.query(ids["c"], ids["f"]) is True
        assert loaded.query(ids["c"], ids["h"]) is False

    def test_load_with_compression(self, tmp_path):
        g = gnp_digraph(25, 0.25, seed=3)
        index = KReachIndex(g, 2)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path, compress_rows_at=2)
        for s in range(g.n):
            for t in range(g.n):
                assert loaded.query(s, t) == index.query(s, t)

    def test_compressed_index_saves(self, tmp_path):
        g = gnp_digraph(25, 0.25, seed=4)
        index = KReachIndex(g, 2, compress_rows_at=2)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        loaded = load_kreach(path)
        assert loaded.weighted_edges() == index.weighted_edges()

    def test_version_check(self, tmp_path):
        g = path_graph(4)
        index = KReachIndex(g, 2)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        # corrupt the version field
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_kreach(path)


class TestLoadValidation:
    def test_corrupted_index_arrays_rejected(self, tmp_path):
        g = gnp_digraph(20, 0.15, seed=6)
        index = KReachIndex(g, 3)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        data = dict(np.load(path))
        data["index_targets"] = data["index_targets"][::-1].copy()  # unsorted rows
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="ascending|indptr|range"):
            load_kreach(path)

    def test_truncated_indptr_rejected(self, tmp_path):
        g = gnp_digraph(20, 0.15, seed=6)
        index = KReachIndex(g, 3)
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        data = dict(np.load(path))
        data["index_indptr"] = data["index_indptr"][:-2].copy()
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_kreach(path)
