"""Differential suite for the bitset-join query engines.

Pins, across power-law "celebrity" graphs and the hub×hub crossfire
scenario the paper's §1 opens with, that every query engine agrees bit
for bit: the bitset join, the chunked cross-product path (including its
forced hub spill), the per-pair scalar walks, and the BFS ground-truth
oracle — for KReach and HKReach alike, over k ∈ {0, 1, 2, 6, None}.
"""

import numpy as np
import pytest

import repro.core.kreach as kreach_module
from repro.bitsets.ops import (
    and_any,
    bit_matrix,
    or_rows_segmented,
    probe_bits,
    words_for,
)
from repro.core import CoverDistanceOracle, HKReachIndex, KReachIndex
from repro.core.batch import plan_cross_products
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    celebrity_crossfire_digraph,
    paper_example_graph,
    power_law_digraph,
)
from repro.graph.traversal import (
    bfs_distances_blocked,
    blocked_ball_probe,
    bulk_reaches_within,
    reaches_within_bfs,
)

K_VALUES = (0, 1, 2, 6, None)


def celebrity_graph(seed: int) -> DiGraph:
    return power_law_digraph(140, 900, exponent=2.0, seed=seed)


def workload(g: DiGraph, seed: int, count: int = 1500) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, g.n, size=(count, 2), dtype=np.int64)


class TestKReachEngines:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("k", K_VALUES)
    def test_bitset_equals_chunked_scalar_and_oracle(self, seed, k):
        g = celebrity_graph(seed)
        idx = KReachIndex(g, k)
        pairs = workload(g, seed)
        bitset = idx.query_batch(pairs, engine="bitset")
        chunked = idx.query_batch(pairs, engine="chunked")
        scalar = idx.query_batch(pairs, engine="scalar")
        assert np.array_equal(bitset, chunked)
        assert np.array_equal(bitset, scalar)
        for (s, t), got in list(zip(pairs, bitset))[:120]:
            assert got == reaches_within_bfs(g, int(s), int(t), k), (s, t, k)

    @pytest.mark.parametrize("k", K_VALUES)
    def test_hub_cross_pairs_no_spill(self, k, monkeypatch):
        """Celebrity×celebrity Case-4 pairs: bitset == chunked even when a
        tiny chunk budget forces every pair onto the hub-spill path."""
        g = celebrity_crossfire_digraph(60, 12, 30, seed=3)
        cover = frozenset(range(60))
        idx = KReachIndex(g, k, cover=cover)
        rng = np.random.default_rng(3)
        pairs = rng.integers(60, g.n, size=(300, 2), dtype=np.int64)
        assert np.all(idx.query_case_batch(pairs)[pairs[:, 0] != pairs[:, 1]] == 4)
        bitset = idx.query_batch(pairs, engine="bitset")
        chunked = idx.query_batch(pairs, engine="chunked")
        assert np.array_equal(bitset, chunked)
        # Shrink the chunk so every non-trivial product takes the spill.
        monkeypatch.setattr(
            kreach_module,
            "plan_cross_products",
            lambda graph, s, t: plan_cross_products(graph, s, t, chunk=4),
        )
        spilled = idx.query_batch(pairs, engine="chunked")
        assert np.array_equal(bitset, spilled)
        for (s, t), got in list(zip(pairs, bitset))[:60]:
            assert got == reaches_within_bfs(g, int(s), int(t), k)

    def test_auto_engine_memory_gate(self):
        g = celebrity_graph(2)
        pairs = workload(g, 2, 600)
        fits = KReachIndex(g, 6)
        gated = KReachIndex(g, 6, cover=fits.cover, bitset_matrix_bytes=0)
        assert fits._case4_matrix() is not None
        assert gated._case4_matrix() is None  # auto falls back to chunked
        assert np.array_equal(
            fits.query_batch(pairs), gated.query_batch(pairs)
        )

    def test_auto_engine_never_plans_cross_products(self, monkeypatch):
        """Acceptance: when the matrix fits, no pair touches the
        cross-product planner (and hence never the hub spill)."""
        g = celebrity_crossfire_digraph(60, 12, 30, seed=7)
        idx = KReachIndex(g, 6, cover=frozenset(range(60)))
        pairs = np.stack(
            [
                np.random.default_rng(7).integers(60, g.n, 200),
                np.random.default_rng(8).integers(60, g.n, 200),
            ],
            axis=1,
        )

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("cross-product planner reached on auto path")

        monkeypatch.setattr(kreach_module, "plan_cross_products", boom)
        assert idx.query_batch(pairs).shape == (200,)

    def test_engine_validation(self):
        idx = KReachIndex(paper_example_graph(), 3)
        with pytest.raises(ValueError):
            idx.query_batch([(0, 1)], engine="warp")


class TestHKReachEngines:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("h,k,strict", [
        (1, 0, False),
        (1, 1, False),
        (2, 2, False),
        (2, 6, True),
        (1, 6, True),
        (2, None, True),
    ])
    def test_bitset_equals_scalar_and_oracle(self, seed, h, k, strict):
        g = celebrity_graph(seed)
        idx = HKReachIndex(g, h, k, strict=strict)
        pairs = workload(g, seed)
        bitset = idx.query_batch(pairs, engine="bitset")
        scalar = idx.query_batch(pairs, engine="scalar")
        assert np.array_equal(bitset, scalar)
        for (s, t), got in list(zip(pairs, bitset))[:120]:
            assert got == idx.query(int(s), int(t))
            assert got == reaches_within_bfs(g, int(s), int(t), k), (s, t, h, k)

    @pytest.mark.parametrize("k", (6, None))
    def test_hub_cross_pairs(self, k):
        g = celebrity_crossfire_digraph(60, 12, 30, seed=5)
        idx = HKReachIndex(g, 2, k, cover=frozenset(range(60)))
        rng = np.random.default_rng(5)
        pairs = rng.integers(60, g.n, size=(300, 2), dtype=np.int64)
        assert np.array_equal(
            idx.query_batch(pairs, engine="bitset"),
            idx.query_batch(pairs, engine="scalar"),
        )

    def test_auto_engine_memory_gate(self):
        g = celebrity_graph(3)
        pairs = workload(g, 3, 600)
        fits = HKReachIndex(g, 2, 6)
        gated = HKReachIndex(g, 2, 6, cover=fits.cover, bitset_matrix_bytes=0)
        assert fits._bitset_ready()
        assert not gated._bitset_ready()
        assert np.array_equal(fits.query_batch(pairs), gated.query_batch(pairs))

    def test_engine_validation(self):
        idx = HKReachIndex(paper_example_graph(), 2, 5)
        with pytest.raises(ValueError):
            idx.query_batch([(0, 1)], engine="warp")


class TestOracleBitsetJoin:
    @pytest.mark.parametrize("matrix_bytes", [None, 0])
    def test_threshold_batches_match_distances(self, matrix_bytes):
        g = celebrity_graph(1)
        kwargs = {} if matrix_bytes is None else {"bitset_matrix_bytes": 0}
        oracle = CoverDistanceOracle(g, **kwargs)
        pairs = workload(g, 1, 800)
        dist = oracle.distance_batch(pairs)
        assert np.array_equal(oracle.reaches_batch(pairs), dist < np.inf)
        for k in (0, 1, 2, 6, 40):
            assert np.array_equal(
                oracle.reaches_within_batch(pairs, k), dist <= k
            ), k


class TestLinkMatrix:
    def test_matches_weighted_edges(self):
        g = celebrity_graph(0)
        idx = KReachIndex(g, 6)
        ig = idx.index_graph
        pos = {int(v): i for i, v in enumerate(ig.cover_ids)}
        for budget in (4, 5, 6, None):
            matrix = ig.link_matrix(budget)
            expect = np.zeros(matrix.shape, dtype=np.uint64)
            for u, v, w in ig.weighted_edges():
                if v in pos and (budget is None or w <= budget):
                    j = pos[v]
                    expect[pos[u], j >> 6] |= np.uint64(1) << np.uint64(j & 63)
            assert np.array_equal(matrix, expect), budget

    def test_diagonal_and_cache(self):
        g = paper_example_graph()
        ig = KReachIndex(g, 3).index_graph
        plain = ig.link_matrix(1)
        diag = ig.link_matrix(1, diagonal=True)
        size = ig.cover_size
        only_diag = bit_matrix(
            np.arange(size), np.arange(size), size, size
        )
        assert np.array_equal(diag, plain | only_diag)
        assert ig.link_matrix(1) is plain  # cached per (budget, diagonal)

    def test_bytes_model(self):
        ig = KReachIndex(paper_example_graph(), 3).index_graph
        assert ig.link_matrix_bytes() == ig.cover_size * words_for(ig.cover_size) * 8


class TestOpsKernels:
    def test_bit_matrix_roundtrip(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 7, size=200)
        cols = rng.integers(0, 130, size=200)
        mat = bit_matrix(rows, cols, 7, 130)
        for r in range(7):
            want = np.zeros(130, dtype=bool)
            want[np.unique(cols[rows == r])] = True
            got = np.unpackbits(
                mat[r].view(np.uint8), bitorder="little"
            )[:130].astype(bool)
            assert np.array_equal(got, want)

    def test_or_rows_and_any_probe(self):
        rng = np.random.default_rng(1)
        base = bit_matrix(
            rng.integers(0, 9, 300), rng.integers(0, 200, 300), 9, 200
        )
        rows = rng.integers(0, 9, size=40)
        owner = np.sort(rng.integers(0, 5, size=40))
        folded = or_rows_segmented(base, rows, owner, 5, max_words=8)
        for seg in range(5):
            want = np.zeros(base.shape[1], dtype=np.uint64)
            for r in rows[owner == seg]:
                want |= base[r]
            assert np.array_equal(folded[seg], want), seg
        assert and_any(folded, folded).tolist() == [
            bool(folded[i].any()) for i in range(5)
        ]
        probe_rows = rng.integers(0, 9, size=60)
        probe_cols = rng.integers(0, 200, size=60)
        got = probe_bits(base, probe_rows, probe_cols)
        for i in range(60):
            bit = (base[probe_rows[i], probe_cols[i] >> 6] >> np.uint64(
                probe_cols[i] & 63
            )) & np.uint64(1)
            assert got[i] == bool(bit)


class TestBlockedBallProbe:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_probes_match_scalar_bfs(self, seed):
        g = celebrity_graph(seed)
        rng = np.random.default_rng(seed)
        sources = np.unique(rng.integers(0, g.n, size=90))
        probe_src = rng.integers(0, len(sources), size=400)
        probe_dst = rng.integers(0, g.n, size=400)
        probe_depth = rng.integers(0, 5, size=400)
        depths = np.zeros(len(sources), dtype=np.int64)
        np.maximum.at(depths, probe_src, probe_depth)
        hits, _ = blocked_ball_probe(
            g, sources, probe_src, probe_dst, probe_depth, depths=depths
        )
        for i in range(400):
            s = int(sources[probe_src[i]])
            assert hits[i] == reaches_within_bfs(
                g, s, int(probe_dst[i]), int(probe_depth[i])
            ), i

    def test_triples_match_blocked_bfs(self):
        g = celebrity_graph(1)
        rng = np.random.default_rng(1)
        sources = np.unique(rng.integers(0, g.n, size=80))
        emit = np.zeros(g.n, dtype=bool)
        emit[rng.integers(0, g.n, size=40)] = True
        empty = np.empty(0, dtype=np.int64)
        _, (src_pos, dst, dist) = blocked_ball_probe(
            g,
            sources,
            empty,
            empty,
            empty,
            depths=np.full(len(sources), 3),
            emit=emit,
        )
        ref = bfs_distances_blocked(g, sources, k=3, emit=emit)
        got = sorted(zip(sources[src_pos].tolist(), dst.tolist(), dist.tolist()))
        want = sorted(zip(*(a.tolist() for a in ref)))
        assert got == want

    def test_requires_unique_sources(self):
        g = paper_example_graph()
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            blocked_ball_probe(g, np.array([1, 1]), empty, empty, empty)

    @pytest.mark.parametrize("k", [0, 1, 3, None])
    def test_bulk_reaches_within(self, k):
        g = celebrity_crossfire_digraph(50, 10, 20, seed=2)
        rng = np.random.default_rng(2)
        s = rng.integers(0, g.n, size=500)
        t = rng.integers(0, g.n, size=500)
        got = bulk_reaches_within(g, s, t, k)
        for i in range(500):
            assert got[i] == reaches_within_bfs(g, int(s[i]), int(t[i]), k), i
