"""HKReachIndex unit and oracle tests."""

import numpy as np
import pytest

from repro.core.hkreach import HKReachIndex
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, path_graph

from tests.conftest import all_pairs, brute_force_khop, graph_corpus


class TestValidation:
    def test_h_must_be_positive(self):
        with pytest.raises(ValueError):
            HKReachIndex(path_graph(4), 0, 5)

    def test_negative_k(self):
        with pytest.raises(ValueError):
            HKReachIndex(path_graph(4), 1, -2)

    def test_definition2_constraint(self):
        with pytest.raises(ValueError, match="h < k/2"):
            HKReachIndex(path_graph(6), 2, 4)

    def test_strict_false_allows_small_k(self):
        idx = HKReachIndex(path_graph(6), 2, 4, strict=False)
        assert idx.h == 2 and idx.k == 4

    def test_unbounded_k_needs_no_constraint(self):
        idx = HKReachIndex(path_graph(6), 3, None)
        assert idx.k is None

    def test_invalid_cover_rejected_on_small_graph(self):
        g = path_graph(6)
        with pytest.raises(ValueError, match="hop vertex cover"):
            HKReachIndex(g, 2, 5, cover=frozenset())

    def test_query_out_of_range(self):
        idx = HKReachIndex(path_graph(4), 1, 3)
        with pytest.raises(ValueError):
            idx.query(0, 9)


class TestCoverFreePathFix:
    """Regression tests for the paper's missing boundary case: paths
    shorter than h can avoid the h-hop cover entirely."""

    def test_single_edge_with_empty_2hop_cover(self):
        # h=2 on a single edge: the cover is empty, yet s ->k t holds.
        g = DiGraph(2, [(0, 1)])
        idx = HKReachIndex(g, 2, 5)
        assert idx.cover == frozenset()
        assert idx.query(0, 1) is True
        assert idx.query(1, 0) is False

    def test_two_disjoint_edges_h3(self):
        g = DiGraph(4, [(0, 1), (2, 3)])
        idx = HKReachIndex(g, 3, 7)
        assert idx.query(0, 1) and idx.query(2, 3)
        assert not idx.query(0, 3)

    def test_length2_path_with_h3(self):
        # path of length 2 < h=3: cover may be empty; both hops work
        g = path_graph(3)
        idx = HKReachIndex(g, 3, 7)
        assert idx.query(0, 2) is True
        assert idx.query(2, 0) is False

    def test_direct_contact_respects_k(self):
        # dist(s, t) = 2 <= h, but k bounds the answer... k >= 2h+1 by
        # Definition 2, so use the non-strict mode to pin the boundary.
        g = path_graph(3)
        idx = HKReachIndex(g, 2, 1, strict=False)
        assert idx.query(0, 1) is True  # distance 1 <= k=1
        assert idx.query(0, 2) is False  # distance 2 > k=1


class TestAgainstKReach:
    def test_h1_matches_kreach_answers(self):
        for g in graph_corpus():
            if g.n == 0:
                continue
            for k in (5, None):
                hk = HKReachIndex(g, 1, k)
                kr = KReachIndex(g, k, cover=hk.cover)
                for s, t in all_pairs(g):
                    assert hk.query(s, t) == kr.query(s, t), (g, k, s, t)


class TestOracle:
    @pytest.mark.parametrize("h,k", [(1, 3), (1, None), (2, 5), (2, 7), (3, 7), (2, None)])
    def test_matches_bfs_on_corpus(self, h, k):
        for g in graph_corpus():
            idx = HKReachIndex(g, h, k)
            for s, t in all_pairs(g):
                assert idx.query(s, t) == brute_force_khop(g, s, t, k), (g, h, k, s, t)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_bfs_random_nonstrict(self, seed):
        rng = np.random.default_rng(seed)
        g = gnp_digraph(int(rng.integers(8, 30)), 0.12, seed=seed)
        for h, k in ((2, 2), (2, 3), (3, 4), (4, 2)):
            idx = HKReachIndex(g, h, k, strict=False)
            for _ in range(80):
                s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
                assert idx.query(s, t) == brute_force_khop(g, s, t, k), (h, k, s, t)

    def test_self_query(self):
        idx = HKReachIndex(path_graph(4), 2, 5)
        assert idx.query(2, 2)

    def test_reaches_alias(self):
        g = path_graph(5)
        idx = HKReachIndex(g, 2, None)
        assert idx.reaches(0, 4) and not idx.reaches(4, 0)


class TestQueryCase:
    def test_cases(self, paper_graph, paper_ids):
        idx = HKReachIndex(
            paper_graph, 2, 5, cover=frozenset(paper_ids[x] for x in "deg")
        )
        assert idx.query_case(paper_ids["e"], paper_ids["g"]) == 1
        assert idx.query_case(paper_ids["d"], paper_ids["h"]) == 2
        assert idx.query_case(paper_ids["a"], paper_ids["g"]) == 3
        assert idx.query_case(paper_ids["a"], paper_ids["j"]) == 4

    def test_out_of_range(self):
        idx = HKReachIndex(path_graph(3), 1, 3)
        with pytest.raises(ValueError):
            idx.query_case(5, 0)


class TestStorage:
    def test_weight_bits_strict(self):
        # 2h+1 = 5 distinct values -> 3 bits
        idx = HKReachIndex(path_graph(10), 2, 5)
        assert idx.weight_bits() == 3

    def test_weight_bits_unbounded(self):
        assert HKReachIndex(path_graph(6), 2, None).weight_bits() == 0

    def test_weight_floor(self):
        # k=5, h=2: weights live in {1..5}, floored at k-2h = 1
        idx = HKReachIndex(path_graph(10), 2, 5, cover=frozenset(range(10)))
        weights = {w for _, _, w in idx.weighted_edges()}
        assert weights <= {1, 2, 3, 4, 5}

    def test_packed_weights(self):
        idx = HKReachIndex(path_graph(10), 2, 5, cover=frozenset(range(10)))
        floor = 5 - 4
        expected = [w - floor for _, _, w in idx.weighted_edges()]
        assert idx.packed_weights().to_list() == expected

    def test_packed_weights_rejected_unbounded(self):
        with pytest.raises(ValueError):
            HKReachIndex(path_graph(4), 1, None).packed_weights()

    def test_smaller_cover_than_kreach(self):
        # Corollary 1's practical effect: the 2-hop cover index is no
        # larger than the 1-hop cover index on a long path.
        g = path_graph(50)
        one = HKReachIndex(g, 1, 11)
        two = HKReachIndex(g, 2, 11)
        assert two.cover_size <= one.cover_size

    def test_storage_bytes_positive(self):
        idx = HKReachIndex(path_graph(20), 2, 7)
        assert idx.storage_bytes() > 0
        assert idx.edge_count >= 0 and idx.cover_size >= 0
