"""KReachIndex unit and oracle tests."""

import numpy as np
import pytest

from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    cycle_graph,
    gnp_digraph,
    paper_example_graph,
    path_graph,
    star_graph,
)

from tests.conftest import all_pairs, brute_force_khop, graph_corpus


class TestConstruction:
    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KReachIndex(path_graph(3), -1)

    def test_invalid_cover_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError, match="not a vertex cover"):
            KReachIndex(g, 2, cover=frozenset({0}))

    def test_cover_is_validated_and_stored(self):
        g = path_graph(4)
        idx = KReachIndex(g, 2, cover=frozenset({1, 2}))
        assert idx.cover == frozenset({1, 2})
        assert idx.contains(1) and not idx.contains(0)

    def test_weights_quantized_to_three_values(self):
        g = path_graph(12)
        idx = KReachIndex(g, 6)
        weights = {w for _, _, w in idx.weighted_edges()}
        assert weights <= {4, 5, 6}

    def test_weight_lookup(self):
        g = path_graph(5)
        idx = KReachIndex(g, 3, cover=frozenset(range(5)))
        assert idx.weight(0, 1) == 1
        assert idx.weight(0, 3) == 3
        assert idx.weight(0, 4) is None  # distance 4 > k
        assert idx.weight(3, 0) is None

    def test_k_zero_index_is_empty(self):
        idx = KReachIndex(path_graph(5), 0)
        assert idx.edge_count == 0

    def test_k_one_only_direct_edges(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        idx = KReachIndex(g, 1, cover=frozenset({0, 1, 2}))
        assert idx.weight(0, 1) == 1
        assert idx.weight(0, 2) is None

    def test_unbounded_mode_matches_bfs_built_index(self):
        # the TC-based n-reach build must equal a brute-force BFS build
        for g in graph_corpus():
            idx = KReachIndex(g, None)
            big_k = KReachIndex(g, g.n + 1, cover=idx.cover)
            assert {(u, v) for u, v, _ in idx.weighted_edges()} == {
                (u, v) for u, v, _ in big_k.weighted_edges()
            }, g

    def test_cover_strategies_accepted(self):
        g = gnp_digraph(12, 0.2, seed=0)
        for strategy in ("degree", "random", "input", "greedy"):
            idx = KReachIndex(g, 3, cover_strategy=strategy)
            assert idx.cover_size >= 0

    def test_include_degree_at_least(self):
        g = star_graph(20)
        idx = KReachIndex(g, 2, include_degree_at_least=5)
        assert idx.contains(0)


class TestQueryCases:
    def test_case_classification(self, paper_graph, paper_ids):
        idx = KReachIndex(
            paper_graph, 3, cover=frozenset(paper_ids[x] for x in "bdgi")
        )
        assert idx.query_case(paper_ids["b"], paper_ids["g"]) == 1
        assert idx.query_case(paper_ids["d"], paper_ids["h"]) == 2
        assert idx.query_case(paper_ids["a"], paper_ids["d"]) == 3
        assert idx.query_case(paper_ids["c"], paper_ids["f"]) == 4

    def test_case_out_of_range(self):
        idx = KReachIndex(path_graph(3), 2)
        with pytest.raises(ValueError):
            idx.query_case(0, 5)

    def test_self_query_true_even_for_k0(self):
        idx = KReachIndex(path_graph(3), 0)
        assert idx.query(1, 1)

    def test_query_out_of_range(self):
        idx = KReachIndex(path_graph(3), 2)
        with pytest.raises(ValueError):
            idx.query(0, 3)
        with pytest.raises(ValueError):
            idx.query(-1, 0)

    def test_case2_direct_edge_self_handshake(self):
        # s in cover, t not; path is the single edge s -> t.  The covering
        # in-neighbor of t is s itself — the paper's implicit self-loop.
        g = DiGraph(3, [(0, 1), (0, 2)])
        idx = KReachIndex(g, 1, cover=frozenset({0}))
        assert idx.query_case(0, 1) == 2
        assert idx.query(0, 1) is True

    def test_case3_direct_edge_self_handshake(self):
        g = DiGraph(3, [(1, 0), (2, 0)])
        idx = KReachIndex(g, 1, cover=frozenset({0}))
        assert idx.query_case(1, 0) == 3
        assert idx.query(1, 0) is True

    def test_case4_two_hop_self_handshake(self):
        # s -> u -> t with only u covered: out-neighbor of s equals the
        # in-neighbor of t.
        g = DiGraph(3, [(0, 1), (1, 2)])
        idx = KReachIndex(g, 2, cover=frozenset({1}))
        assert idx.query_case(0, 2) == 4
        assert idx.query(0, 2) is True
        # but k=1 must say no (the path has length 2)
        idx1 = KReachIndex(g, 1, cover=frozenset({1}))
        assert idx1.query(0, 2) is False

    def test_case4_no_predecessors(self):
        g = DiGraph(4, [(0, 1), (1, 2)])
        idx = KReachIndex(g, 3, cover=frozenset({1}))
        # vertex 3 has no in-neighbors; query into it is trivially false
        assert idx.query(0, 3) is False


class TestOracle:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 7, None])
    def test_matches_bfs_on_corpus(self, k):
        for g in graph_corpus():
            idx = KReachIndex(g, k)
            for s, t in all_pairs(g):
                assert idx.query(s, t) == brute_force_khop(g, s, t, k), (g, k, s, t)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bfs_random(self, seed):
        rng = np.random.default_rng(seed)
        g = gnp_digraph(int(rng.integers(10, 40)), 0.1, seed=seed)
        for k in (2, 5, None):
            idx = KReachIndex(g, k)
            for _ in range(100):
                s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
                assert idx.query(s, t) == brute_force_khop(g, s, t, k)

    def test_cycle_graph_wraparound(self):
        g = cycle_graph(5)
        idx = KReachIndex(g, 3)
        assert idx.query(0, 3)
        assert not idx.query(0, 4)
        full = KReachIndex(g, None)
        assert full.query(0, 4)

    def test_reaches_alias(self):
        g = path_graph(4)
        idx = KReachIndex(g, None)
        assert idx.reaches(0, 3) and not idx.reaches(3, 0)


class TestStorage:
    def test_weight_bits(self):
        assert KReachIndex(path_graph(4), 3).weight_bits() == 2
        assert KReachIndex(path_graph(4), None).weight_bits() == 0

    def test_storage_bytes_grows_with_edges(self):
        small = KReachIndex(path_graph(4), 2)
        large = KReachIndex(path_graph(40), 10)
        assert large.storage_bytes() > small.storage_bytes()

    def test_packed_weights_round_trip(self):
        g = path_graph(12)
        idx = KReachIndex(g, 6)
        packed = idx.packed_weights()
        floor = 6 - 2
        expected = [w - floor for _, _, w in idx.weighted_edges()]
        assert packed.to_list() == expected

    def test_packed_weights_rejected_for_nreach(self):
        with pytest.raises(ValueError):
            KReachIndex(path_graph(4), None).packed_weights()

    def test_counts(self):
        g = paper_example_graph()
        ids = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
        idx = KReachIndex(g, 3, cover=frozenset(ids[x] for x in "bdgi"))
        assert idx.cover_size == 4
        assert idx.edge_count == 5  # Figure 2: bd, bg, dg, di, gi
