"""Parallel construction tests (§4.1.3): bit-identical to serial."""

import numpy as np
import pytest

from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.core.parallel import build_kreach_parallel, parallel_khop_triples
from repro.graph.generators import gnp_digraph, path_graph


class TestParallelTriples:
    @pytest.mark.parametrize("k", [2, 5, None])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_triples_match_serial(self, k, workers):
        g = gnp_digraph(60, 0.06, seed=7)
        serial = KReachIndex(g, k, builder="serial")
        triples = parallel_khop_triples(g, serial.cover, k, workers=workers)
        ig = IndexGraph.for_kreach(g.n, serial.cover, *triples, k)
        assert ig == serial.index_graph

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            parallel_khop_triples(path_graph(4), {1, 2}, 2, workers=0)

    def test_empty_cover(self):
        g = path_graph(1)
        src, dst, dist = parallel_khop_triples(g, set(), 3, workers=2)
        assert len(src) == len(dst) == len(dist) == 0


class TestBuildParallel:
    @pytest.mark.parametrize("k", [3, None])
    def test_index_answers_match_serial(self, k):
        g = gnp_digraph(50, 0.08, seed=8)
        serial = KReachIndex(g, k)
        parallel = build_kreach_parallel(g, k, workers=2, cover=serial.cover)
        assert parallel.index_graph == serial.index_graph
        rng = np.random.default_rng(0)
        for _ in range(300):
            s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
            assert serial.query(s, t) == parallel.query(s, t), (k, s, t)

    def test_with_compression(self):
        g = gnp_digraph(40, 0.15, seed=9)
        serial = KReachIndex(g, 4)
        parallel = build_kreach_parallel(
            g, 4, workers=2, cover=serial.cover, compress_rows_at=2
        )
        for s in range(g.n):
            for t in range(0, g.n, 3):
                assert serial.query(s, t) == parallel.query(s, t)

    def test_cover_computed_when_omitted(self):
        g = gnp_digraph(30, 0.1, seed=10)
        parallel = build_kreach_parallel(g, 3, workers=1)
        serial = KReachIndex(g, 3, cover=parallel.cover)
        assert parallel.weighted_edges() == serial.weighted_edges()
