"""WAH compressed row-store tests (``storage='wah'``).

Three layers under test, each differential against its dense twin:

* the vectorized WAH codec (:func:`encode_bits` word-identical to the
  reference loop encoder, decode round-trips);
* :class:`WahRowStore` keeping :class:`KeyedRowStore`'s exact ``lookup``
  contract, and :class:`WahBitMatrix` keeping the dense link-matrix
  semantics through the Case-4 bitset join;
* a ``storage='wah'`` index answering bit-identically to dense across
  every engine, surviving a v5 mmap round-trip, and staying out of the
  dynamic tier (which requires dense rows).
"""

import numpy as np
import pytest

from repro.bitsets.wah import (
    WahBitMatrix,
    WahBitVector,
    decode_bits,
    decode_indices,
    encode_bits,
)
from repro.core.batch import MISSING_WEIGHT, KeyedRowStore
from repro.core.dynamic import DynamicKReachIndex
from repro.core.kreach import KReachIndex
from repro.core.rowstore import WahRowStore
from repro.core.serialize import load_mmap, save_mmap
from repro.graph.generators import (
    complete_digraph,
    gnp_digraph,
    random_dag,
    star_graph,
)

ENGINES = ("auto", "bitset", "chunked", "scalar", "native")


def random_bits(size, density, seed):
    rng = np.random.default_rng(seed)
    return rng.random(size) < density


class TestCodec:
    @pytest.mark.parametrize("density", [0.0, 0.001, 0.03, 0.5, 0.97, 1.0])
    @pytest.mark.parametrize("size", [0, 1, 30, 31, 32, 62, 63, 500, 4096])
    def test_encode_matches_reference(self, size, density):
        bits = random_bits(size, density, seed=size + int(density * 1000))
        fast = encode_bits(bits)
        ref = WahBitVector.compress_reference(bits)
        assert fast.tolist() == ref.words, (size, density)

    def test_decode_round_trip(self):
        for seed in range(5):
            bits = random_bits(2000, 0.05, seed)
            words = encode_bits(bits)
            assert np.array_equal(decode_bits(words, bits.size), bits)
            assert np.array_equal(
                decode_indices(words, bits.size), np.flatnonzero(bits)
            )

    def test_clustered_runs_compress(self):
        bits = np.zeros(100_000, dtype=bool)
        bits[500:600] = True
        words = encode_bits(bits)
        assert words.nbytes < 200  # two fills + a few literals
        assert np.array_equal(decode_bits(words, bits.size), bits)

    def test_corrupt_stream_rejected(self):
        words = encode_bits(random_bits(310, 0.5, seed=0))
        with pytest.raises(ValueError, match="corrupt WAH"):
            decode_bits(words[:-1], 310)


class TestWahBitMatrix:
    def test_take_matches_dense(self):
        rng = np.random.default_rng(2)
        ncols = 300
        nwords = (ncols + 63) // 64
        dense = rng.integers(0, 1 << 63, size=(40, nwords), dtype=np.uint64)
        # Mask tail bits beyond ncols so dense and decoded agree.
        tail = ncols % 64
        if tail:
            dense[:, -1] &= np.uint64((1 << tail) - 1)
        mat = WahBitMatrix.from_dense(dense, ncols, hot_rows=4)
        assert mat.shape == dense.shape and mat.ndim == 2
        rows = rng.integers(0, 40, size=200)
        assert np.array_equal(mat.take(rows), dense[rows])

    def test_storage_smaller_on_sparse_rows(self):
        dense = np.zeros((64, 64), dtype=np.uint64)
        dense[7, 3] = 1
        mat = WahBitMatrix.from_dense(dense, 64 * 64)
        assert mat.storage_bytes() < mat.dense_bytes()


class TestWahRowStore:
    def build(self, seed=3, n=120, p=0.06, k=6):
        g = gnp_digraph(n, p, seed=seed)
        idx = KReachIndex(g, k)
        ig = idx.index_graph
        return ig, KeyedRowStore(ig.keys(), ig.weights64(), ig.n)

    def test_lookup_matches_keyed(self):
        ig, keyed = self.build()
        wah = WahRowStore.from_index_graph(ig, hot_rows=2)
        rng = np.random.default_rng(4)
        u = rng.integers(0, ig.n, size=3000)
        v = rng.integers(0, ig.n, size=3000)
        assert np.array_equal(wah.lookup(u, v), keyed.lookup(u, v))
        assert len(wah) == len(keyed)

    def test_lookup_empty(self):
        ig, _ = self.build()
        wah = WahRowStore.from_index_graph(ig)
        out = wah.lookup(np.empty(0, np.int64), np.empty(0, np.int64))
        assert out.size == 0

    def test_weight_of_scalar(self):
        ig, keyed = self.build(seed=5)
        wah = WahRowStore.from_index_graph(ig)
        cover = ig.cover_ids.tolist()
        for u in cover[:5]:
            for v in range(0, ig.n, 7):
                expect = keyed.lookup(
                    np.array([u], np.int64), np.array([v], np.int64)
                )[0]
                got = wah.weight_of(u, v)
                # weight_of keeps the scalar probe contract: None when
                # the store holds no (u, v) entry, plain int otherwise.
                assert got == (None if expect == MISSING_WEIGHT else expect)

    def test_missing_is_missing(self):
        ig, _ = self.build(seed=6)
        wah = WahRowStore.from_index_graph(ig)
        non_cover = sorted(set(range(ig.n)) - set(ig.cover_ids.tolist()))
        if non_cover:
            assert wah.weight_of(non_cover[0], 0) is None

    def test_storage_accounts_all_arrays(self):
        ig, _ = self.build(seed=7)
        wah = WahRowStore.from_index_graph(ig)
        assert wah.storage_bytes() >= wah.words.nbytes + wah.cover_ids.nbytes


class TestWahIndexParity:
    def graphs(self):
        return [
            gnp_digraph(100, 0.05, seed=8),
            random_dag(80, 300, seed=9),
            star_graph(64),
            complete_digraph(12),
        ]

    @pytest.mark.parametrize("k", [2, 6, None])
    def test_all_engines_match_dense(self, k):
        rng = np.random.default_rng(10)
        for g in self.graphs():
            dense = KReachIndex(g, k)
            wah = KReachIndex(g, k, cover=dense.cover, storage="wah")
            assert wah.index_graph.storage == "wah"
            pairs = rng.integers(0, g.n, size=(500, 2))
            ref = dense.query_batch(pairs)
            for engine in ENGINES:
                got = wah.query_batch(pairs, engine=engine)
                assert np.array_equal(ref, got), (g.n, k, engine)

    def test_scalar_query_matches_dense(self):
        g = gnp_digraph(60, 0.08, seed=11)
        dense = KReachIndex(g, 6)
        wah = KReachIndex(g, 6, cover=dense.cover, storage="wah")
        for s in range(0, g.n, 5):
            for t in range(g.n):
                assert wah.query(s, t) == dense.query(s, t), (s, t)

    def test_storage_bytes_smaller_on_compressible_index(self):
        g = gnp_digraph(300, 0.04, seed=12)
        dense = KReachIndex(g, None)
        wah = KReachIndex(g, None, cover=dense.cover, storage="wah")
        assert wah.storage_bytes() < dense.storage_bytes()

    def test_invalid_storage_rejected(self):
        g = gnp_digraph(20, 0.1, seed=13)
        with pytest.raises(ValueError):
            KReachIndex(g, 2, storage="zip")


class TestWahSerialization:
    def test_mmap_round_trip(self, tmp_path):
        g = gnp_digraph(150, 0.05, seed=14)
        wah = KReachIndex(g, 6, storage="wah")
        path = tmp_path / "wah.kri"
        save_mmap(wah, path)
        loaded = load_mmap(path, verify=True, validate=True)
        assert loaded.index_graph.storage == "wah"
        pairs = np.random.default_rng(15).integers(0, g.n, size=(800, 2))
        ref = wah.query_batch(pairs)
        for engine in ENGINES:
            assert np.array_equal(ref, loaded.query_batch(pairs, engine=engine))

    def test_wah_file_smaller_than_dense(self, tmp_path):
        g = gnp_digraph(300, 0.04, seed=16)
        dense = KReachIndex(g, None)
        wah = KReachIndex(g, None, cover=dense.cover, storage="wah")
        save_mmap(dense, tmp_path / "d.kri")
        save_mmap(wah, tmp_path / "w.kri")
        assert (
            (tmp_path / "w.kri").stat().st_size
            < (tmp_path / "d.kri").stat().st_size
        )

    def test_dense_file_has_no_storage_field(self, tmp_path):
        import json

        g = gnp_digraph(30, 0.1, seed=17)
        save_mmap(KReachIndex(g, 2), tmp_path / "d.kri")
        raw = (tmp_path / "d.kri").read_bytes()
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[20 : 20 + hlen])
        assert "storage" not in header

    def test_unknown_storage_rejected(self, tmp_path):
        import json
        import zlib

        g = gnp_digraph(30, 0.1, seed=18)
        path = tmp_path / "d.kri"
        save_mmap(KReachIndex(g, 2), path)
        raw = bytearray(path.read_bytes())
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[20 : 20 + hlen])
        header["storage"] = "lzma"
        blob = json.dumps(header, separators=(",", ":")).encode()
        blob = blob.ljust(hlen, b" ")  # keep every payload offset intact
        raw[8:16] = len(blob).to_bytes(8, "little")
        raw[16:20] = zlib.crc32(blob).to_bytes(4, "little")
        raw[20 : 20 + len(blob)] = blob
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="storage"):
            load_mmap(path)


class TestDynamicGuard:
    def test_dynamic_rejects_wah_base(self):
        g = gnp_digraph(40, 0.1, seed=19)
        wah = KReachIndex(g, 2, storage="wah")
        with pytest.raises(ValueError, match="dense-storage"):
            DynamicKReachIndex.from_base(wah)
