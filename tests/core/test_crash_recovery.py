"""Crash-safe persistence suite: atomic saves, checksums, journal recovery.

Drives the ``serialize.*`` failpoints and hand-corrupted files through
the durability layer and pins the acceptance contract: a crash mid-save
never damages the previous snapshot, a crash mid-append is recovered by
truncating the torn tail (acknowledged records replay exactly — garbage
never does), every detected corruption surfaces as a typed
:class:`~repro.core.serialize.IndexCorruptionError` with offset/section
detail, and legacy un-checksummed v4 files still load.
"""

import json
import os
import subprocess
import sys
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.cli import main as cli_main
from repro.core.dynamic import DynamicKReachIndex
from repro.core.kreach import KReachIndex
from repro.core.serialize import (
    _MMAP_MAGIC_V4,
    _MMAP_PROLOGUE,
    _MMAP_PROLOGUE_V4,
    IndexCorruptionError,
    OpLog,
    load_mmap,
    read_oplog,
    recover_dynamic,
    recover_oplog,
    save_kreach,
    save_mmap,
    verify_file,
)
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    faults.reset()


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(50, 0.09, seed=17)


@pytest.fixture(scope="module")
def index(graph):
    return KReachIndex(graph, 3)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.n, 2500, rng=np.random.default_rng(9))


def as_legacy_v4(path: Path, out: Path) -> Path:
    """Down-convert a v5 file to the pre-checksum v4 layout.

    Real v4 files predate this test suite; reconstructing one (16-byte
    prologue, no header CRC, no per-section ``crc32`` keys,
    ``format_version: 4``) from the v5 writer keeps the backward-compat
    load path pinned without a binary fixture in the tree.
    """
    raw = path.read_bytes()
    hlen = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[_MMAP_PROLOGUE : _MMAP_PROLOGUE + hlen])
    header["format_version"] = 4
    for section in header["sections"].values():
        section.pop("crc32", None)
    blob = json.dumps(header, separators=(",", ":")).encode()
    old_base = (_MMAP_PROLOGUE + hlen + 63) // 64 * 64
    new_base = (_MMAP_PROLOGUE_V4 + len(blob) + 63) // 64 * 64
    out.write_bytes(
        _MMAP_MAGIC_V4
        + len(blob).to_bytes(8, "little")
        + blob
        + b"\x00" * (new_base - _MMAP_PROLOGUE_V4 - len(blob))
        + raw[old_base:]
    )
    return out


class TestAtomicSave:
    def test_failed_save_preserves_previous_snapshot(
        self, tmp_path, index, pairs
    ):
        path = tmp_path / "index.kr4"
        save_mmap(index, path)
        before = path.read_bytes()
        with faults.inject("serialize.v4_write_mid", "error"):
            with pytest.raises(faults.FaultInjected):
                save_mmap(index, path)
        assert path.read_bytes() == before
        assert not list(tmp_path.glob(".*.tmp.*")), "temp litter left behind"
        reloaded = load_mmap(path, verify=True)
        assert np.array_equal(
            reloaded.query_batch(pairs), index.query_batch(pairs)
        )

    def test_first_save_failure_leaves_nothing(self, tmp_path, index):
        path = tmp_path / "fresh.kr4"
        with faults.inject("serialize.v4_write_mid", "error"):
            with pytest.raises(faults.FaultInjected):
                save_mmap(index, path)
        assert not path.exists()
        assert not list(tmp_path.glob(".*.tmp.*"))

    def test_npz_saves_are_atomic_too(self, tmp_path, index):
        path = tmp_path / "index.npz"
        save_kreach(index, path)
        before = path.read_bytes()
        # No failpoint inside np.savez_compressed — simulate by writing
        # through the same helper with a writer that dies midway.
        from repro.core.serialize import _atomic_write

        with pytest.raises(RuntimeError, match="disk on fire"):

            def bad_writer(fh):
                fh.write(b"partial")
                raise RuntimeError("disk on fire")

            _atomic_write(path, bad_writer)
        assert path.read_bytes() == before
        assert not list(tmp_path.glob(".*.tmp.*"))

    def test_kill9_mid_save_subprocess(self, tmp_path, index, pairs):
        """A process killed inside the v4_write_mid failpoint (os._exit,
        the in-process stand-in for kill -9) must leave the old snapshot
        byte-identical and reloadable."""
        path = tmp_path / "index.kr4"
        save_mmap(index, path)
        before = path.read_bytes()
        script = (
            "from repro.core.kreach import KReachIndex\n"
            "from repro.core.serialize import save_mmap\n"
            "from repro.graph.generators import gnp_digraph\n"
            f"save_mmap(KReachIndex(gnp_digraph(50, 0.09, seed=17), 3), {str(path)!r})\n"
            "raise SystemExit('save should have died mid-write')\n"
        )
        env = dict(os.environ)
        env["KREACH_FAULTS"] = "serialize.v4_write_mid:exit"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(__file__).resolve().parents[2] / "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == faults.EXIT_CODE, proc.stderr
        assert path.read_bytes() == before
        reloaded = load_mmap(path, verify=True)
        assert np.array_equal(
            reloaded.query_batch(pairs), index.query_batch(pairs)
        )


class TestChecksums:
    @pytest.fixture()
    def path(self, tmp_path, index):
        path = tmp_path / "index.kr4"
        save_mmap(index, path)
        return path

    def test_header_crc_catches_bit_flip(self, tmp_path, path):
        raw = bytearray(path.read_bytes())
        raw[_MMAP_PROLOGUE + 5] ^= 0x40
        bad = tmp_path / "hdr.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(IndexCorruptionError, match="header checksum"):
            load_mmap(bad)

    def test_section_crc_catches_payload_flip(self, tmp_path, path):
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0x01  # deep in the last section's payload
        bad = tmp_path / "payload.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(IndexCorruptionError) as exc:
            load_mmap(bad, verify=True)
        assert exc.value.section is not None
        assert exc.value.offset is not None

    def test_default_open_skips_section_crcs(self, tmp_path, path, index):
        # O(header) open contract: without verify=True a payload flip is
        # not scanned for (the O(1) structural checks still run).
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0x01
        bad = tmp_path / "payload.kr4"
        bad.write_bytes(bytes(raw))
        load_mmap(bad)  # opens; integrity is opt-in by design

    def test_corruption_error_is_valueerror(self, tmp_path, path):
        raw = bytearray(path.read_bytes())
        raw[_MMAP_PROLOGUE + 5] ^= 0x40
        bad = tmp_path / "hdr.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ValueError):  # subclass contract
            load_mmap(bad)

    def test_verify_roundtrip_clean(self, path, index, pairs):
        loaded = load_mmap(path, verify=True)
        assert np.array_equal(
            loaded.query_batch(pairs), index.query_batch(pairs)
        )


class TestLegacyV4:
    def test_legacy_file_still_loads(self, tmp_path, index, pairs):
        v5 = tmp_path / "index.kr4"
        save_mmap(index, v5)
        legacy = as_legacy_v4(v5, tmp_path / "legacy.kr4")
        loaded = load_mmap(legacy)
        assert np.array_equal(
            loaded.query_batch(pairs), index.query_batch(pairs)
        )

    def test_legacy_verify_requests_resave(self, tmp_path, index):
        v5 = tmp_path / "index.kr4"
        save_mmap(index, v5)
        legacy = as_legacy_v4(v5, tmp_path / "legacy.kr4")
        with pytest.raises(ValueError, match="no stored checksums"):
            load_mmap(legacy, verify=True)

    def test_legacy_audit_reports_no_crc(self, tmp_path, index):
        v5 = tmp_path / "index.kr4"
        save_mmap(index, v5)
        legacy = as_legacy_v4(v5, tmp_path / "legacy.kr4")
        report = verify_file(legacy)
        assert report["ok"]  # un-checksummed is legal, not corrupt
        assert all(row["status"] == "no-crc" for row in report["sections"])


class TestOpLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ops.krlog"
        with OpLog(path, fsync=False) as log:
            log.append(0, 1, 2)
            log.append(1, 3, 4)
            log.extend([(0, 5, 6)])
            assert log.op_count == 3
        assert read_oplog(path).tolist() == [[0, 1, 2], [1, 3, 4], [0, 5, 6]]

    def test_empty_log(self, tmp_path):
        path = tmp_path / "ops.krlog"
        OpLog(path, fsync=False).close()
        assert read_oplog(path).shape == (0, 3)

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "ops.krlog"
        with OpLog(path, fsync=False) as log:
            log.append(0, 1, 2)
            log.append(0, 3, 4)
        good_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\x18\x00\x00\x00torn-partial-frame")
        ops, torn = recover_oplog(path)
        assert ops.tolist() == [[0, 1, 2], [0, 3, 4]]
        assert torn == 22
        assert path.stat().st_size == good_size
        # Idempotent once clean.
        assert recover_oplog(path)[1] == 0

    def test_reopen_recovers_and_appends(self, tmp_path):
        path = tmp_path / "ops.krlog"
        with OpLog(path, fsync=False) as log:
            log.append(0, 1, 2)
        with open(path, "ab") as fh:
            fh.write(b"\xff" * 10)  # torn tail from a crash
        with OpLog(path, fsync=False) as log:
            assert log.recovered_bytes == 10
            assert log.op_count == 1
            log.append(1, 7, 8)
        assert read_oplog(path).tolist() == [[0, 1, 2], [1, 7, 8]]

    def test_midfile_corruption_raises_with_offset(self, tmp_path):
        path = tmp_path / "ops.krlog"
        with OpLog(path, fsync=False) as log:
            log.append(0, 1, 2)
            log.append(0, 3, 4)
        raw = bytearray(path.read_bytes())
        raw[8 + 6] ^= 0xFF  # payload of the FIRST record: not a torn tail
        path.write_bytes(bytes(raw))
        with pytest.raises(IndexCorruptionError) as exc:
            read_oplog(path)
        assert exc.value.offset == 8
        with pytest.raises(IndexCorruptionError):
            recover_oplog(path)  # never silently truncates acked records

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "ops.krlog"
        path.write_bytes(b"NOTALOG!" + b"\x00" * 32)
        with pytest.raises(IndexCorruptionError, match="magic"):
            read_oplog(path)

    def test_torn_append_failpoint_recovers(self, tmp_path):
        path = tmp_path / "ops.krlog"
        with OpLog(path, fsync=False) as log:
            log.append(0, 1, 2)
        with faults.inject("serialize.v3_log_tail", "error"):
            log = OpLog(path, fsync=False)
            with pytest.raises(faults.FaultInjected):
                log.append(0, 9, 9)  # half the frame reaches the disk
            log.close()
        ops, torn = recover_oplog(path)
        assert ops.tolist() == [[0, 1, 2]]  # the torn record never acked
        assert torn == 16


class TestRecoverDynamic:
    def _churn(self, dyn, n, ops=40, seed=2):
        rng = np.random.default_rng(seed)
        for _ in range(ops):
            u, v = (int(x) for x in rng.integers(0, n, 2))
            if rng.random() < 0.7:
                dyn.insert_edge(u, v)
            else:
                dyn.delete_edge(u, v)

    @pytest.mark.parametrize("base_format", ["npz", "mmap"])
    def test_journal_replay_matches_live_index(
        self, tmp_path, graph, index, pairs, base_format
    ):
        base_path = tmp_path / ("base.npz" if base_format == "npz" else "base.kr4")
        (save_kreach if base_format == "npz" else save_mmap)(index, base_path)
        log_path = tmp_path / "updates.krlog"
        dyn = DynamicKReachIndex.from_base(KReachIndex(graph, 3))
        dyn.attach_journal(OpLog(log_path, fsync=False))
        self._churn(dyn, graph.n)
        dyn._journal.close()
        recovered = recover_dynamic(base_path, log_path)
        assert np.array_equal(
            recovered.query_batch(pairs), dyn.query_batch(pairs)
        )

    def test_recovery_after_torn_append(self, tmp_path, graph, index, pairs):
        base_path = tmp_path / "base.npz"
        save_kreach(index, base_path)
        log_path = tmp_path / "updates.krlog"
        dyn = DynamicKReachIndex.from_base(KReachIndex(graph, 3))
        dyn.attach_journal(OpLog(log_path, fsync=False))
        self._churn(dyn, graph.n)
        # The next update tears mid-append (writer "crashes"): the live
        # index saw the op, the journal did not finish acknowledging it.
        with faults.inject("serialize.v3_log_tail", "error"):
            with pytest.raises(faults.FaultInjected):
                dyn.insert_edge(0, 1)
        dyn._journal.close()
        recovered = recover_dynamic(base_path, log_path)
        # Re-apply the unacknowledged op (what a real writer would do on
        # restart): states must then re-converge exactly.
        recovered.insert_edge(0, 1)
        assert np.array_equal(
            recovered.query_batch(pairs), dyn.query_batch(pairs)
        )

    def test_no_op_writes_not_journaled(self, tmp_path, graph):
        log_path = tmp_path / "updates.krlog"
        dyn = DynamicKReachIndex.from_base(KReachIndex(graph, 3))
        dyn.attach_journal(OpLog(log_path, fsync=False))
        dyn.insert_edge(0, 1)
        dyn.insert_edge(0, 1)  # duplicate: no-op, not journaled
        dyn.insert_edge(2, 2)  # self-loop: no-op
        dyn.delete_edge(5, 6)  # absent: no-op
        dyn._journal.close()
        assert len(read_oplog(log_path)) == 1


class TestVerifyAudit:
    def test_clean_artifacts_report_ok(self, tmp_path, graph, index):
        mmap_path = tmp_path / "index.kr4"
        npz_path = tmp_path / "index.npz"
        log_path = tmp_path / "ops.krlog"
        save_mmap(index, mmap_path)
        save_kreach(index, npz_path)
        with OpLog(log_path, fsync=False) as log:
            log.append(0, 1, 2)
        for path in (mmap_path, npz_path, log_path):
            report = verify_file(path)
            assert report["ok"], report
            assert report["sections"]

    def test_flip_flagged_with_section_detail(self, tmp_path, index):
        path = tmp_path / "index.kr4"
        save_mmap(index, path)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0x01
        path.write_bytes(bytes(raw))
        report = verify_file(path)
        assert not report["ok"]
        bad = [r for r in report["sections"] if r["status"] == "mismatch"]
        assert len(bad) == 1 and bad[0]["stored"] != bad[0]["computed"]

    def test_unrecognized_file(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"not an artifact, definitely")
        report = verify_file(path)
        assert not report["ok"] and "not a k-reach" in report["detail"]

    def test_cli_verify_exit_codes(self, tmp_path, index, capsys):
        clean = tmp_path / "clean.kr4"
        save_mmap(index, clean)
        assert cli_main(["verify", str(clean)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "crc32" in out

        raw = bytearray(clean.read_bytes())
        raw[-5] ^= 0x01
        dirty = tmp_path / "dirty.kr4"
        dirty.write_bytes(bytes(raw))
        assert cli_main(["verify", str(clean), str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "mismatch" in out

    def test_cli_verify_json(self, tmp_path, index, capsys):
        clean = tmp_path / "clean.kr4"
        save_mmap(index, clean)
        assert cli_main(["verify", "--json", str(clean)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is True

    def test_zlib_crc_definition_pinned(self, tmp_path, index):
        # The on-disk CRC is plain zlib.crc32 over the raw section bytes
        # — pin that so an implementation swap cannot silently change
        # the format.
        path = tmp_path / "index.kr4"
        save_mmap(index, path)
        report = verify_file(path)
        raw = path.read_bytes()
        for row in report["sections"]:
            if row["name"] == "<header>" or "offset" not in row:
                continue
            start, nbytes = row["offset"], row["bytes"]
            assert row["stored"] == zlib.crc32(raw[start : start + nbytes])
