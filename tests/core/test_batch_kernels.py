"""Unit tests for the batch-engine kernels in repro.core.batch.

The differential suite pins end-to-end equivalence; these tests target
the kernels' edge cases directly — chunk splitting, the big-pair
spill-over, empty stores/probes — which small test graphs never reach
through the index APIs.
"""

import numpy as np
import pytest

from repro.core.batch import (
    MISSING_WEIGHT,
    KeyedRowStore,
    as_pair_arrays,
    gather_segments,
    has_edge_batch,
    plan_cross_products,
    segment_any,
)
from repro.core.rowstore import CompressedRow
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph


class TestAsPairArrays:
    def test_splits_columns(self):
        s, t = as_pair_arrays([(1, 2), (3, 4)], n=5)
        assert s.tolist() == [1, 3] and t.tolist() == [2, 4]

    def test_empty(self):
        for empty in ([], np.empty((0, 2), dtype=int)):
            s, t = as_pair_arrays(empty, n=3)
            assert len(s) == 0 and len(t) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            as_pair_arrays([(0, 3)], n=3)
        with pytest.raises(ValueError):
            as_pair_arrays([(-1, 0)], n=3)
        with pytest.raises(ValueError):
            as_pair_arrays([(0, 1, 2)], n=3)

    def test_float_pairs_rejected_not_truncated(self):
        with pytest.raises(ValueError, match="integer"):
            as_pair_arrays(np.array([[0.9, 1.2]]), n=3)


class TestKeyedRowStore:
    def test_empty_store(self):
        store = KeyedRowStore.from_rows({}, n=4)
        assert len(store) == 0
        got = store.lookup(np.array([0, 1]), np.array([1, 2]))
        assert (got == MISSING_WEIGHT).all()

    def test_empty_probe(self):
        store = KeyedRowStore.from_rows({0: {1: 2}}, n=4)
        assert store.lookup(np.empty(0, np.int64), np.empty(0, np.int64)).shape == (0,)

    def test_mixed_plain_and_compressed(self):
        rows = {
            0: {2: 1, 3: 2},
            5: CompressedRow({1: 3, 4: 1, 7: 3}, universe=8),
            2: {0: 1},
        }
        store = KeyedRowStore.from_rows(rows, n=8)
        assert len(store) == 6
        u = np.array([0, 0, 5, 5, 2, 3])
        v = np.array([3, 1, 7, 5, 0, 0])
        got = store.lookup(u, v)
        assert got.tolist()[:5] == [2, MISSING_WEIGHT, 3, MISSING_WEIGHT, 1]
        assert got[5] == MISSING_WEIGHT

    def test_unsorted_insertion_order(self):
        """Rows inserted with descending targets still look up correctly
        (the sortedness fast path must not skip a needed argsort)."""
        row = dict(zip(range(9, -1, -1), range(10)))  # 9->0, 8->1, ...
        store = KeyedRowStore.from_rows({3: row, 1: {5: 7}}, n=10)
        got = store.lookup(np.array([3, 3, 1]), np.array([9, 0, 5]))
        assert got.tolist() == [0, 9, 7]


class TestGatherSegments:
    def test_matches_adjacency(self):
        g = gnp_digraph(20, 0.15, seed=51)
        vertices = np.array([3, 7, 3, 0], dtype=np.int64)
        nbrs, owner, counts = gather_segments(g.out_indptr, g.out_indices, vertices)
        for j, v in enumerate(vertices):
            mine = nbrs[owner == j].tolist()
            assert mine == [int(x) for x in g.out_neighbors(int(v))]
            assert counts[j] == g.out_degree(int(v))

    def test_empty_frontier(self):
        g = gnp_digraph(5, 0.2, seed=52)
        nbrs, owner, counts = gather_segments(
            g.out_indptr, g.out_indices, np.empty(0, dtype=np.int64)
        )
        assert len(nbrs) == 0 and len(owner) == 0 and len(counts) == 0


class TestSegmentAny:
    def test_reduction(self):
        hits = np.array([False, True, False, False, True])
        owner = np.array([0, 0, 1, 2, 2])
        assert segment_any(hits, owner, 4).tolist() == [True, False, True, False]

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert segment_any(empty.astype(bool), empty, 3).tolist() == [False] * 3


class TestPlanCrossProducts:
    def _brute(self, g, s, t):
        product = set()
        for j, (a, b) in enumerate(zip(s.tolist(), t.tolist())):
            for u in g.out_neighbors(a):
                for v in g.in_neighbors(b):
                    product.add((j, int(u), int(v)))
        return product

    @pytest.mark.parametrize("chunk", [1, 3, 7, 1 << 21])
    def test_chunks_cover_full_product(self, chunk):
        g = gnp_digraph(15, 0.2, seed=53)
        rng = np.random.default_rng(53)
        s = rng.integers(0, g.n, size=12)
        t = rng.integers(0, g.n, size=12)
        big, chunks = plan_cross_products(g, s, t, chunk=chunk)
        seen = set()
        for sel, u, v, owner in chunks:
            assert len(u) == len(v) == len(owner)
            for uu, vv, oo in zip(u.tolist(), v.tolist(), owner.tolist()):
                seen.add((int(sel[oo]), uu, vv))
        brute = self._brute(g, s, t)
        covered = {j for j, _, _ in brute}
        spilled = set(big.tolist())
        # Chunked blocks + spilled-big pairs partition the full product.
        assert {j for j, _, _ in seen}.isdisjoint(spilled)
        assert seen == {x for x in brute if x[0] not in spilled}
        for j in spilled:
            assert j in covered  # only non-empty products spill

    def test_big_pairs_exceed_chunk(self):
        g = gnp_digraph(15, 0.3, seed=54)
        s = np.arange(10, dtype=np.int64)
        t = np.arange(10, dtype=np.int64)
        oc = (g.out_indptr[s + 1] - g.out_indptr[s]).astype(int)
        ic = (g.in_indptr[t + 1] - g.in_indptr[t]).astype(int)
        big, chunks = plan_cross_products(g, s, t, chunk=2)
        list(chunks)
        assert set(big.tolist()) == {j for j in range(10) if oc[j] * ic[j] > 2}


class TestHasEdgeBatch:
    def test_matches_scalar(self):
        g = gnp_digraph(25, 0.1, seed=55)
        rng = np.random.default_rng(55)
        s = rng.integers(0, g.n, size=300)
        t = rng.integers(0, g.n, size=300)
        got = has_edge_batch(g, s, t)
        for i in range(len(s)):
            assert got[i] == g.has_edge(int(s[i]), int(t[i]))

    def test_edgeless_graph(self):
        g = DiGraph(4)
        assert not has_edge_batch(g, np.array([0, 1]), np.array([1, 2])).any()


class TestCoalescePairs:
    def test_dedup_and_inverse(self):
        from repro.core.batch import coalesce_pairs

        s = np.array([3, 0, 3, 0, 1])
        t = np.array([1, 2, 1, 2, 1])
        us, ut, inv = coalesce_pairs(s, t, 4)
        assert len(us) == 3
        assert np.array_equal(us[inv], s)
        assert np.array_equal(ut[inv], t)

    def test_no_duplicates_identity_coverage(self):
        from repro.core.batch import coalesce_pairs

        s = np.array([0, 1, 2])
        t = np.array([2, 1, 0])
        us, ut, inv = coalesce_pairs(s, t, 3)
        assert len(us) == 3
        assert np.array_equal(us[inv], s) and np.array_equal(ut[inv], t)

    def test_case_grouping_orders_by_code(self):
        from repro.core.batch import coalesce_pairs, case_codes

        rng = np.random.default_rng(7)
        n = 50
        s = rng.integers(0, n, 300)
        t = rng.integers(0, n, 300)
        flags = np.zeros(n, dtype=bool)
        flags[::3] = True
        codes = case_codes(flags[s], flags[t])
        us, ut, inv = coalesce_pairs(s, t, n, codes=codes)
        assert np.array_equal(us[inv], s) and np.array_equal(ut[inv], t)
        ucodes = case_codes(flags[us], flags[ut])
        assert np.all(np.diff(ucodes) >= 0)  # grouped: codes non-decreasing

    def test_empty(self):
        from repro.core.batch import coalesce_pairs

        empty = np.empty(0, dtype=np.int64)
        us, ut, inv = coalesce_pairs(empty, empty, 5, codes=empty)
        assert len(us) == 0 and len(ut) == 0 and len(inv) == 0
