"""Hub-aware partitioner differential suite.

Pins the sharding tier's core claim: a :class:`ShardedKReach` built by
:func:`partition_kreach` answers **bit-identically** to the single
global index (and to the BFS oracle) for every shard count, hop budget,
and engine — including hub-stress graphs where the interesting pairs
all cross shards — plus the structural invariants that make the claim
hold (boundary separation, boundary ⊆ cover) and the manifest
round-trip.
"""

import numpy as np
import pytest

from repro.baselines import BfsIndex
from repro.core.kreach import KReachIndex
from repro.core.partition import (
    ShardedKReach,
    default_hub_count,
    partition_kreach,
)
from repro.core.serialize import (
    IndexCorruptionError,
    load_sharded,
    save_sharded,
    verify_file,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(90, 0.05, seed=21)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.n, 4000, rng=np.random.default_rng(3))


def two_block_hub_graph(block=40, hubs=4, seed=9):
    """Two dense communities bridged *only* through hub vertices.

    SCC condensation keeps each community's components apart, so a
    2-shard partition puts the blocks on different shards and every
    block-to-block pair exercises the cross-shard portal stitch.
    """
    rng = np.random.default_rng(seed)
    edges = []
    n = 2 * block + hubs
    for b in range(2):
        lo = b * block
        dense = rng.random((block, block)) < 0.08
        np.fill_diagonal(dense, False)
        u, v = np.nonzero(dense)
        edges.append(np.stack([u + lo, v + lo], 1))
    for h in range(2 * block, n):
        fans = rng.choice(2 * block, size=12, replace=False)
        edges.append(np.stack([np.full(6, h), fans[:6]], 1))
        edges.append(np.stack([fans[6:], np.full(6, h)], 1))
    return DiGraph(n, np.concatenate(edges))


class TestDifferential:
    @pytest.mark.parametrize("k", [2, 6, None])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_vs_global_vs_bfs(self, graph, pairs, k, num_shards):
        reference = KReachIndex(graph, k).query_batch(pairs)
        bfs = BfsIndex(graph)
        sub = pairs[:300]
        oracle = np.array(
            [
                bfs.reaches(int(s), int(t))
                if k is None
                else bfs.reaches_within(int(s), int(t), k)
                for s, t in sub.tolist()
            ]
        )
        assert np.array_equal(reference[:300], oracle)
        sharded = partition_kreach(graph, k, num_shards)
        for engine in ("auto", "scalar"):
            assert np.array_equal(
                sharded.query_batch(pairs, engine=engine), reference
            )

    @pytest.mark.parametrize("k", [2, 6, None])
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_hub_stress_all_cross(self, k, num_shards):
        """Block-to-block pairs must traverse the boundary stitch."""
        g = two_block_hub_graph()
        rng = np.random.default_rng(11)
        s = rng.integers(0, 40, size=1500)
        t = rng.integers(40, 80, size=1500)
        pairs = np.stack(
            [np.concatenate([s, t]), np.concatenate([t, s])], axis=1
        )
        reference = KReachIndex(g, k).query_batch(pairs)
        sharded = partition_kreach(g, k, num_shards, hub_count=4)
        owner = sharded.route(
            pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
        )
        assert (owner < 0).sum() > 0, "stress graph must produce cross pairs"
        assert np.array_equal(sharded.query_batch(pairs), reference)

    def test_self_pairs_and_duplicates(self, graph):
        vertices = np.arange(graph.n, dtype=np.int64)
        self_pairs = np.stack([vertices, vertices], axis=1)
        sharded = partition_kreach(graph, 6, 3)
        assert bool(sharded.query_batch(self_pairs).all())
        dup = np.tile(self_pairs[:5], (40, 1))
        reference = KReachIndex(graph, 6).query_batch(dup)
        assert np.array_equal(sharded.query_batch(dup), reference)


class TestInvariants:
    def test_boundary_separates_interiors(self, graph):
        sharded = partition_kreach(graph, 6, 3)
        shard_of = sharded.shard_of
        for u, v in graph.edges():
            if shard_of[u] >= 0 and shard_of[v] >= 0:
                assert shard_of[u] == shard_of[v], (
                    f"edge ({u},{v}) joins two different shard interiors"
                )

    def test_boundary_inside_every_shard_cover(self, graph):
        sharded = partition_kreach(graph, 6, 3)
        for shard in sharded.shards:
            local_boundary = shard.to_local(sharded.boundary)
            assert set(local_boundary.tolist()) <= set(shard.index.cover)

    def test_top_hub_is_boundary(self, graph):
        sharded = partition_kreach(graph, 6, 2)
        top = int(np.argmax(graph.degrees()))
        assert top in set(sharded.boundary.tolist())

    def test_shards_cover_all_vertices(self, graph):
        sharded = partition_kreach(graph, 6, 4)
        seen = np.zeros(graph.n, dtype=bool)
        for shard in sharded.shards:
            seen[shard.vertex_map] = True
        assert bool(seen.all())

    def test_num_shards_validation(self, graph):
        with pytest.raises(ValueError, match="num_shards"):
            partition_kreach(graph, 6, 0)

    def test_default_hub_count_scales(self):
        assert default_hub_count(0) >= 1
        assert default_hub_count(100) >= 10
        assert default_hub_count(10_000) >= 100

    def test_summary_shape(self, graph):
        summary = partition_kreach(graph, 6, 2).summary()
        assert summary["num_shards"] == 2
        assert len(summary["shard_sizes"]) == 2
        assert summary["boundary_size"] >= default_hub_count(graph.n)


class TestManifest:
    @pytest.mark.parametrize("k", [6, None])
    def test_roundtrip_bit_identical(self, tmp_path, graph, pairs, k):
        sharded = partition_kreach(graph, k, 2)
        directory = tmp_path / f"m{k}"
        save_sharded(sharded, directory)
        loaded = ShardedKReach.from_manifest(
            load_sharded(directory, verify=True)
        )
        assert np.array_equal(
            loaded.query_batch(pairs), sharded.query_batch(pairs)
        )
        assert loaded.k == sharded.k
        assert np.array_equal(loaded.boundary, sharded.boundary)

    def test_verify_file_clean_and_corrupt(self, tmp_path, graph):
        directory = tmp_path / "m"
        save_sharded(partition_kreach(graph, 6, 2), directory)
        report = verify_file(directory)
        assert report["ok"], report
        assert any(r["name"] == "manifest.json" for r in report["sections"])
        # Also accepts the manifest path itself.
        assert verify_file(directory / "manifest.json")["ok"]
        # Flip one byte mid-shard-file: the audit must name the file.
        victim = directory / "shard-001.kr5"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        report = verify_file(directory)
        assert not report["ok"]
        assert any(
            r["status"] == "mismatch" and r["name"] == "shard-001.kr5"
            for r in report["sections"]
        )

    def test_load_rejects_missing_and_resized(self, tmp_path, graph):
        directory = tmp_path / "m"
        save_sharded(partition_kreach(graph, 6, 2), directory)
        victim = directory / "entry-000.npy"
        original = victim.read_bytes()
        victim.unlink()
        with pytest.raises(IndexCorruptionError, match="missing"):
            load_sharded(directory)
        victim.write_bytes(original + b"\x00")
        with pytest.raises(IndexCorruptionError, match="size mismatch"):
            load_sharded(directory)

    def test_load_rejects_manifest_tamper(self, tmp_path, graph):
        directory = tmp_path / "m"
        save_sharded(partition_kreach(graph, 6, 2), directory)
        manifest = directory / "manifest.json"
        text = manifest.read_text().replace('"n": 90', '"n": 91')
        manifest.write_text(text)
        with pytest.raises(IndexCorruptionError, match="CRC32"):
            load_sharded(directory)
