"""ThreadQueryServer differential suite.

Pins the zero-IPC serving tier's contract: a thread pool sharing one
mmap'd index answers bit-identically to the in-process engine, to the
BFS oracle, and to the process-pool :class:`QueryServer` — across worker
counts, hop budgets, engines, shard sizes, pipelined submit/collect,
and a worker-side exception (which must settle the ticket and leave the
pool serviceable).
"""

import numpy as np
import pytest

from repro import native
from repro.baselines import BfsIndex
from repro.core.kreach import KReachIndex
from repro.core.serialize import save_mmap
from repro.core.serve import QueryServer, ThreadQueryServer
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(80, 0.05, seed=21)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.n, 4000, rng=np.random.default_rng(3))


def serve_file(tmp_path, graph, k):
    index = KReachIndex(graph, k)
    path = tmp_path / f"k{k}.kr4"
    save_mmap(index, path)
    return index, path


class TestDifferential:
    @pytest.mark.parametrize("k", [0, 2, 6, None])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_inprocess_and_oracle(self, tmp_path, graph, pairs, k, workers):
        index, path = serve_file(tmp_path, graph, k)
        expected = index.query_batch(pairs)
        with ThreadQueryServer(path, workers=workers) as server:
            got = server.query_batch(pairs)
        assert np.array_equal(expected, got)
        bfs = BfsIndex(graph)
        sample = pairs[:200].tolist()
        oracle = np.array(
            [
                bfs.reaches(int(s), int(t))
                if k is None
                else bfs.reaches_within(int(s), int(t), k)
                for s, t in sample
            ]
        )
        assert np.array_equal(got[:200], oracle)

    @pytest.mark.parametrize("engine", ["auto", "native", "bitset", "scalar"])
    def test_engines_agree(self, tmp_path, graph, pairs, engine):
        index, path = serve_file(tmp_path, graph, 3)
        expected = index.query_batch(pairs, engine="scalar")
        with ThreadQueryServer(path, workers=2, engine=engine) as server:
            assert np.array_equal(expected, server.query_batch(pairs))
            # Per-call override beats the constructor default.
            assert np.array_equal(
                expected, server.query_batch(pairs, engine="scalar")
            )

    def test_matches_process_pool_server(self, tmp_path, graph, pairs):
        _, path = serve_file(tmp_path, graph, 4)
        with ThreadQueryServer(path, workers=2) as tserver, QueryServer(
            path, workers=2
        ) as pserver:
            assert np.array_equal(
                tserver.query_batch(pairs), pserver.query_batch(pairs)
            )

    @pytest.mark.parametrize("shard_pairs", [1, 7, 100, 100_000])
    def test_shard_sizes(self, tmp_path, graph, shard_pairs):
        index, path = serve_file(tmp_path, graph, 3)
        small = random_pairs(graph.n, 500, rng=np.random.default_rng(9))
        with ThreadQueryServer(
            path, workers=2, shard_pairs=shard_pairs
        ) as server:
            assert np.array_equal(
                index.query_batch(small), server.query_batch(small)
            )

    def test_duplicate_heavy_batch(self, tmp_path, graph):
        index, path = serve_file(tmp_path, graph, 2)
        rng = np.random.default_rng(5)
        dupes = np.repeat(random_pairs(graph.n, 40, rng=rng), 50, axis=0)
        rng.shuffle(dupes)
        with ThreadQueryServer(path, workers=3) as server:
            assert np.array_equal(
                index.query_batch(dupes), server.query_batch(dupes)
            )

    def test_pipelined_submit_collect(self, tmp_path, graph, pairs):
        index, path = serve_file(tmp_path, graph, 6)
        chunks = np.array_split(pairs, 5)
        with ThreadQueryServer(path, workers=2, shard_pairs=257) as server:
            tickets = [server.submit(chunk) for chunk in chunks]
            # Collect out of order: tickets are independent.
            results = {t: server.collect(t) for t in reversed(tickets)}
        for t, chunk in zip(tickets, chunks):
            assert np.array_equal(index.query_batch(chunk), results[t])

    def test_prepare_false_lazy_build(self, tmp_path, graph, pairs):
        index, path = serve_file(tmp_path, graph, 3)
        with ThreadQueryServer(path, workers=3, prepare=False) as server:
            # First use races three workers into the lock-guarded build.
            tickets = [server.submit(pairs[i::3]) for i in range(3)]
            for i, t in enumerate(tickets):
                assert np.array_equal(
                    index.query_batch(pairs[i::3]), server.collect(t)
                )

    def test_empty_batch(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with ThreadQueryServer(path, workers=1) as server:
            out = server.query_batch(np.empty((0, 2), dtype=np.int64))
            assert out.dtype == bool and len(out) == 0
            assert server.stats()["outstanding_tickets"] == 0


class TestLifecycleAndErrors:
    def test_constructor_validation(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with pytest.raises(ValueError, match="workers"):
            ThreadQueryServer(path, workers=0)
        with pytest.raises(ValueError, match="shard_pairs"):
            ThreadQueryServer(path, shard_pairs=0)
        with pytest.raises(ValueError, match="engine"):
            ThreadQueryServer(path, engine="warp")

    def test_submit_rejects_bad_engine_and_pairs(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with ThreadQueryServer(path, workers=1) as server:
            with pytest.raises(ValueError, match="engine"):
                server.submit([(0, 1)], engine="warp")
            with pytest.raises(ValueError):
                server.submit([(0, graph.n + 5)])

    def test_collect_unknown_ticket(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        with ThreadQueryServer(path, workers=1) as server:
            ticket = server.submit([(0, 1)])
            server.collect(ticket)
            with pytest.raises(KeyError):
                server.collect(ticket)
            with pytest.raises(KeyError):
                server.collect(999)

    def test_worker_error_propagates_and_pool_survives(
        self, tmp_path, graph, pairs
    ):
        index, path = serve_file(tmp_path, graph, 3)
        with ThreadQueryServer(path, workers=2) as server:
            real = server._index.query_batch

            def boom(batch, *, engine=None):
                raise RuntimeError("kernel exploded")

            server._index.query_batch = boom
            try:
                with pytest.raises(RuntimeError, match="kernel exploded"):
                    server.query_batch(pairs[:100])
            finally:
                server._index.query_batch = real
            # The pool must still serve after a worker-side failure.
            assert np.array_equal(
                index.query_batch(pairs), server.query_batch(pairs)
            )

    def test_close_is_idempotent_and_blocks_use(self, tmp_path, graph):
        _, path = serve_file(tmp_path, graph, 2)
        server = ThreadQueryServer(path, workers=2)
        assert server.query_batch([(0, 1)]).shape == (1,)
        server.close()
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit([(0, 1)])
        with pytest.raises(RuntimeError, match="closed"):
            server.collect(0)

    def test_stats_and_properties(self, tmp_path, graph, pairs):
        _, path = serve_file(tmp_path, graph, 2)
        with ThreadQueryServer(path, workers=3) as server:
            server.query_batch(pairs[:500])
            stats = server.stats()
            assert stats["workers"] == server.workers == 3
            assert stats["pairs_served"] == 500
            assert stats["outstanding_tickets"] == 0
            assert stats["kernel_threads"] == native.thread_budget(3)
            assert server.index is not None
            assert "ThreadQueryServer" in repr(server)

    def test_kernel_thread_pin(self, tmp_path, graph, monkeypatch):
        import os

        _, path = serve_file(tmp_path, graph, 2)
        monkeypatch.delenv("NUMBA_NUM_THREADS", raising=False)
        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        with ThreadQueryServer(path, workers=2) as server:
            budget = native.thread_budget(2)
            assert server.kernel_threads == budget
            assert os.environ["NUMBA_NUM_THREADS"] == str(budget)
            assert os.environ["OMP_NUM_THREADS"] == str(budget)
