"""IndexGraph substrate tests.

The central invariant of the CSR-native refactor: the **serial**
per-source builder, the **blocked** bit-parallel MS-BFS builder, and the
**process-parallel** builder all produce bit-identical
:class:`~repro.core.index_graph.IndexGraph` contents for every ``k``
(k=None included), on randomized graphs.  Plus unit coverage for the
structure's views and conversion helpers.
"""

import numpy as np
import pytest

from repro.core.index_graph import (
    IndexGraph,
    cover_triples_blocked,
    cover_triples_serial,
)
from repro.core.kreach import KReachIndex
from repro.core.parallel import build_kreach_parallel
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, paper_example_graph, path_graph


class TestIndexGraphUnit:
    def test_from_rows_round_trip(self):
        rows = {1: {4: 2, 2: 1}, 4: {1: 3}}
        ig = IndexGraph.from_rows(6, [1, 4, 5], rows)
        assert ig.cover_size == 3  # cover vertex 5 keeps an (empty) row
        assert ig.edge_count == 3
        assert ig.rows_dict() == rows
        assert ig.weighted_edges() == [(1, 2, 1), (1, 4, 2), (4, 1, 3)]

    def test_weight_of(self):
        ig = IndexGraph.from_rows(8, [0, 3], {0: {3: 2, 5: 1}})
        assert ig.weight_of(0, 3) == 2
        assert ig.weight_of(0, 4) is None
        assert ig.weight_of(3, 0) is None  # empty row
        assert ig.weight_of(7, 0) is None  # not in cover
        assert ig.weight_of(-1, 0) is None

    def test_keys_sorted_and_flat_agree(self):
        rng = np.random.default_rng(5)
        g = gnp_digraph(40, 0.1, seed=5)
        idx = KReachIndex(g, 4)
        ig = idx.index_graph
        keys = ig.keys()
        assert bool(np.all(keys[:-1] < keys[1:]))
        flat = ig.flat()
        for u, v, w in ig.weighted_edges():
            assert flat[u * g.n + v] == w
        assert len(flat) == ig.edge_count

    def test_quantization_floor(self):
        src = np.array([0, 0, 0])
        dst = np.array([1, 2, 3])
        dist = np.array([1, 4, 5])
        ig = IndexGraph.from_triples(
            4, [0, 1, 2, 3], src, dst, dist, floor=3, weight_bits=2
        )
        assert [w for _, _, w in ig.weighted_edges()] == [3, 4, 5]
        assert ig.packed.to_list() == [0, 1, 2]  # stored as w - floor

    def test_zero_weights(self):
        ig = IndexGraph.from_triples(
            3,
            [0, 1],
            np.array([0]),
            np.array([1]),
            np.array([7]),
            zero_weights=True,
            weight_bits=1,
        )
        assert ig.weighted_edges() == [(0, 1, 0)]

    def test_source_outside_cover_rejected(self):
        with pytest.raises(ValueError, match="cover"):
            IndexGraph.from_triples(
                4, [0], np.array([2]), np.array([0]), np.array([1])
            )

    def test_target_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            IndexGraph.from_triples(
                4, [0], np.array([0]), np.array([9]), np.array([1])
            )

    def test_empty(self):
        ig = IndexGraph.from_rows(5, [], {})
        assert ig.cover_size == 0 and ig.edge_count == 0
        assert ig.weighted_edges() == []
        assert ig.flat() == {}

    def test_equality(self):
        a = IndexGraph.from_rows(6, [1, 4], {1: {4: 2}})
        b = IndexGraph.from_rows(6, [1, 4], {1: {4: 2}})
        c = IndexGraph.from_rows(6, [1, 4], {1: {4: 3}})
        assert a == b
        assert a != c


class TestTripleProducersAgree:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5, None])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_serial_equals_blocked(self, k, seed):
        g = gnp_digraph(70, 0.06, seed=seed)
        idx = KReachIndex(g, 2)  # any cover works; reuse its pick
        cover = idx.cover
        s1 = sorted(zip(*(a.tolist() for a in cover_triples_serial(g, cover, k))))
        s2 = sorted(zip(*(a.tolist() for a in cover_triples_blocked(g, cover, k))))
        assert s1 == s2

    def test_wide_cover_crosses_block_boundary(self):
        # >64 sources forces multiple uint64 blocks through the kernel.
        g = gnp_digraph(200, 0.03, seed=9)
        cover = frozenset(range(0, 200, 2))  # 100 sources
        s1 = sorted(zip(*(a.tolist() for a in cover_triples_serial(g, cover, 4))))
        s2 = sorted(zip(*(a.tolist() for a in cover_triples_blocked(g, cover, 4))))
        assert s1 == s2


class TestBuilderDifferential:
    """Serial, blocked, and parallel builders: identical IndexGraphs."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5, None])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_randomized_graphs(self, k, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 90))
        g = gnp_digraph(n, float(rng.uniform(0.02, 0.12)), seed=100 + seed)
        serial = KReachIndex(g, k, builder="serial")
        blocked = KReachIndex(g, k, cover=serial.cover, builder="blocked")
        parallel = build_kreach_parallel(g, k, cover=serial.cover, workers=2)
        assert serial.index_graph == blocked.index_graph, (k, seed)
        assert blocked.index_graph == parallel.index_graph, (k, seed)
        # And the assembled indexes answer identically.
        pairs = rng.integers(0, g.n, size=(200, 2))
        assert np.array_equal(
            serial.query_batch(pairs), blocked.query_batch(pairs)
        )

    def test_paper_example(self):
        g = paper_example_graph()
        ids = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
        cover = frozenset(ids[x] for x in "bdgi")
        for k in (3, None):
            serial = KReachIndex(g, k, cover=cover, builder="serial")
            blocked = KReachIndex(g, k, cover=cover, builder="blocked")
            assert serial.index_graph == blocked.index_graph

    def test_path_graph_edges(self):
        g = path_graph(6)
        serial = KReachIndex(g, 2, builder="serial")
        blocked = KReachIndex(g, 2, cover=serial.cover, builder="blocked")
        assert serial.weighted_edges() == blocked.weighted_edges()

    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError, match="builder"):
            KReachIndex(path_graph(3), 2, builder="magic")

    def test_disconnected_and_empty(self):
        g = DiGraph(5)  # no edges: empty cover, empty index
        for builder in ("serial", "blocked"):
            idx = KReachIndex(g, 3, builder=builder)
            assert idx.edge_count == 0
            assert idx.query(0, 0) and not idx.query(0, 1)


class TestSharedStorageConsumers:
    def test_keyed_store_zero_copy_view(self):
        g = gnp_digraph(50, 0.08, seed=11)
        idx = KReachIndex(g, 3).prepare_batch()
        store = idx._keyed()
        assert store._keys is idx.index_graph.keys()

    def test_wah_view_matches_csr(self):
        g = gnp_digraph(40, 0.2, seed=12)
        plain = KReachIndex(g, 4)
        packed = KReachIndex(g, 4, cover=plain.cover, compress_rows_at=2)
        assert plain.weighted_edges() == packed.weighted_edges()
        for s in range(g.n):
            for t in range(0, g.n, 3):
                assert plain.query(s, t) == packed.query(s, t)


class TestDuplicateTriples:
    def test_duplicate_src_dst_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            IndexGraph.from_triples(
                5, [0], np.array([0, 0]), np.array([1, 1]), np.array([1, 2])
            )

    def test_for_kreach_goes_through_same_guard(self):
        with pytest.raises(ValueError, match="duplicate"):
            IndexGraph.for_kreach(
                4, [0], np.array([0, 0]), np.array([2, 2]), np.array([1, 1]), 3
            )
