"""General-k support tests (§4.4): oracle, geometric family, exact family."""

import numpy as np
import pytest

from repro.core.general_k import (
    INFINITE_DISTANCE,
    CoverDistanceOracle,
    ExactKFamily,
    GeometricKReachFamily,
    KHopAnswer,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, gnp_digraph, path_graph
from repro.graph.traversal import UNREACHED, bfs_distances

from tests.conftest import all_pairs, brute_force_khop, graph_corpus


class TestCoverDistanceOracle:
    def test_distances_match_bfs_on_corpus(self):
        for g in graph_corpus():
            oracle = CoverDistanceOracle(g)
            for s in range(g.n):
                dist = bfs_distances(g, s)
                for t in range(g.n):
                    expected = (
                        INFINITE_DISTANCE if dist[t] == UNREACHED else int(dist[t])
                    )
                    assert oracle.distance(s, t) == expected, (g, s, t)

    def test_reaches_within_any_k(self):
        g = path_graph(6)
        oracle = CoverDistanceOracle(g)
        assert oracle.reaches_within(0, 4, 4)
        assert not oracle.reaches_within(0, 4, 3)
        with pytest.raises(ValueError):
            oracle.reaches_within(0, 4, -1)

    def test_reaches(self):
        g = DiGraph(4, [(0, 1), (2, 3)])
        oracle = CoverDistanceOracle(g)
        assert oracle.reaches(0, 1) and not oracle.reaches(0, 3)

    def test_invalid_cover(self):
        with pytest.raises(ValueError):
            CoverDistanceOracle(path_graph(4), cover=frozenset({0}))

    def test_query_out_of_range(self):
        oracle = CoverDistanceOracle(path_graph(3))
        with pytest.raises(ValueError):
            oracle.distance(0, 7)

    def test_weight_bits_reflects_diameter(self):
        oracle = CoverDistanceOracle(path_graph(40))
        # distances up to ~39 need 6 bits
        assert oracle.weight_bits() >= 5

    def test_storage_positive(self):
        oracle = CoverDistanceOracle(path_graph(10))
        assert oracle.storage_bytes() > 0
        assert oracle.cover_size > 0
        assert oracle.edge_count >= 0


class TestGeometricFamily:
    def test_levels_are_powers_of_two(self):
        fam = GeometricKReachFamily(path_graph(20), max_k=16)
        assert fam.levels == [2, 4, 8, 16]
        assert fam.num_levels == 4

    def test_max_k_rounds_up(self):
        fam = GeometricKReachFamily(path_graph(20), max_k=9)
        assert fam.max_k == 16

    def test_tiny_max_k_clamped(self):
        fam = GeometricKReachFamily(path_graph(4), max_k=1)
        assert fam.max_k == 2

    def test_exact_answers_are_correct_on_corpus(self):
        for g in graph_corpus():
            fam = GeometricKReachFamily(g)  # default max_k = n-1: covers d
            for s, t in all_pairs(g):
                for k in (0, 1, 2, 3, 5, 9):
                    ans = fam.query(s, t, k)
                    truth = brute_force_khop(g, s, t, k)
                    if ans.exact:
                        assert ans.reachable == truth, (g, s, t, k)
                    else:
                        assert ans.reachable and not truth or ans.reachable
                        assert ans.upper_bound is not None
                        assert brute_force_khop(g, s, t, ans.upper_bound)

    def test_refine_tightens_bounds(self):
        g = path_graph(20)
        fam = GeometricKReachFamily(g, max_k=16, max_k_covers_diameter=True)
        # dist(0, 3) = 3; k=3 probes the 4-index: hit with level 4 > 3, but
        # refine finds the 2-index misses and certifies nothing tighter...
        ans = fam.query(0, 3, 3, refine=True)
        assert ans.reachable
        # dist(0, 2) = 2: refine should find the 2-level and make it exact
        ans2 = fam.query(0, 2, 3, refine=True)
        assert ans2.exact and ans2.reachable

    def test_band_semantics(self):
        # dist(0, 4) = 4: query with k=3 probes the 4-index -> approximate
        g = path_graph(10)
        fam = GeometricKReachFamily(g, max_k=8, max_k_covers_diameter=True)
        ans = fam.query(0, 4, 3)
        assert ans.reachable and not ans.exact and ans.upper_bound == 4
        assert bool(ans) is True

    def test_no_beyond_top_level_is_exact_when_covering(self):
        g = path_graph(6)
        fam = GeometricKReachFamily(g, max_k=8, max_k_covers_diameter=True)
        ans = fam.query(5, 0, 100)
        assert not ans.reachable and ans.exact

    def test_k_validation(self):
        fam = GeometricKReachFamily(path_graph(4))
        with pytest.raises(ValueError):
            fam.query(0, 1, -1)

    def test_k0_k1_shortcuts(self):
        g = path_graph(4)
        fam = GeometricKReachFamily(g)
        assert fam.query(1, 1, 0) == KHopAnswer(True, True)
        assert fam.query(0, 1, 0) == KHopAnswer(False, True)
        assert fam.query(0, 1, 1).reachable
        assert not fam.query(0, 2, 1).reachable

    def test_reaches_within_bool_view(self):
        fam = GeometricKReachFamily(path_graph(6))
        assert fam.reaches_within(0, 3, 4)

    def test_storage_is_sum_of_levels(self):
        fam = GeometricKReachFamily(path_graph(10), max_k=8)
        assert fam.storage_bytes() == sum(
            ix.storage_bytes() for ix in fam.indexes.values()
        )


class TestExactKFamily:
    def test_matches_bfs_all_k_on_corpus(self):
        for g in graph_corpus():
            fam = ExactKFamily(g)
            for s, t in all_pairs(g):
                for k in (0, 1, 2, 3, 4, 6, 50):
                    assert fam.reaches_within(s, t, k) == brute_force_khop(
                        g, s, t, k
                    ), (g, s, t, k)

    def test_beyond_diameter_uses_reachability(self):
        g = cycle_graph(5)
        fam = ExactKFamily(g)
        assert fam.reaches_within(0, 4, 100)

    def test_k_validation(self):
        fam = ExactKFamily(path_graph(4))
        with pytest.raises(ValueError):
            fam.reaches_within(0, 1, -1)

    def test_explicit_diameter(self):
        fam = ExactKFamily(path_graph(8), diameter=7)
        assert fam.diameter == 7
        assert fam.reaches_within(0, 7, 7)
        assert not fam.reaches_within(0, 7, 6)

    def test_storage_counts_all_members(self):
        fam = ExactKFamily(path_graph(8))
        assert fam.storage_bytes() > 0
        assert len(fam.indexes) == fam.diameter - 1
