"""ShardedQueryServer scatter-gather suite.

Pins the multi-shard serving contract: verdicts bit-identical to the
single-index engine across backends and shard counts, input-order
reassembly across scattered sub-tickets, deadline semantics, aggregate
stats (including the per-worker restart counters), and exactness across
a shard worker killed mid-ticket.
"""

import numpy as np
import pytest

from repro import faults
from repro.core.kreach import KReachIndex
from repro.core.partition import partition_kreach
from repro.core.serialize import save_sharded
from repro.core.serve import QueryTimeout, UnknownTicketError
from repro.core.sharded import ShardedQueryServer
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(80, 0.05, seed=21)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.n, 4000, rng=np.random.default_rng(3))


@pytest.fixture(scope="module")
def manifests(graph, tmp_path_factory):
    """Shard-count -> manifest directory, for k=6."""
    base = tmp_path_factory.mktemp("manifests")
    out = {}
    for count in (1, 2, 4):
        directory = base / f"s{count}"
        save_sharded(partition_kreach(graph, 6, count), directory)
        out[count] = directory
    return out


class TestDifferential:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_bit_identical(self, graph, pairs, manifests, backend, num_shards):
        reference = KReachIndex(graph, 6).query_batch(pairs)
        with ShardedQueryServer(
            manifests[num_shards], workers=1, backend=backend
        ) as server:
            assert np.array_equal(server.query_batch(pairs), reference)
            # engine override flows through to the pools
            assert np.array_equal(
                server.query_batch(pairs[:500], engine="scalar"),
                reference[:500],
            )

    @pytest.mark.parametrize("k", [2, None])
    def test_other_budgets(self, tmp_path, graph, pairs, k):
        directory = tmp_path / "m"
        save_sharded(partition_kreach(graph, k, 2), directory)
        reference = KReachIndex(graph, k).query_batch(pairs)
        with ShardedQueryServer(directory, backend="thread") as server:
            assert server.k == k
            assert np.array_equal(server.query_batch(pairs), reference)

    def test_pipelined_tickets_in_input_order(self, graph, pairs, manifests):
        reference = KReachIndex(graph, 6).query_batch(pairs)
        chunks = [c for c in np.array_split(pairs, 5) if len(c)]
        with ShardedQueryServer(manifests[2], backend="thread") as server:
            tickets = [server.submit(c) for c in chunks]
            gathered = np.concatenate([server.collect(t) for t in tickets])
        assert np.array_equal(gathered, reference)

    def test_empty_batch(self, manifests):
        with ShardedQueryServer(manifests[2], backend="thread") as server:
            assert len(server.query_batch(np.empty((0, 2), dtype=np.int64))) == 0


class TestLifecycle:
    def test_unknown_and_double_collect(self, manifests, pairs):
        with ShardedQueryServer(manifests[2], backend="thread") as server:
            ticket = server.submit(pairs[:100])
            server.collect(ticket)
            with pytest.raises(UnknownTicketError):
                server.collect(ticket)
            with pytest.raises(UnknownTicketError):
                server.collect(12345)

    def test_closed_server_refuses(self, manifests, pairs):
        server = ShardedQueryServer(manifests[2], backend="thread")
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(pairs[:10])

    def test_deadline_bounds_hung_shard(self, tmp_path, graph, pairs, manifests):
        """A hung shard worker trips the collect bound; the ticket stays
        collectable and settles exactly once the watchdog recovers."""
        reference = KReachIndex(graph, 6).query_batch(pairs)
        with faults.inject(
            "serve.worker_hang", "hang", token=str(tmp_path / "tok")
        ):
            with ShardedQueryServer(
                manifests[2],
                workers=1,
                backend="process",
                server_kwargs={"hang_timeout": 1.0, "slot_pairs": 256},
            ) as server:
                ticket = server.submit(pairs)
                with pytest.raises(QueryTimeout):
                    server.collect(ticket, timeout=0.3)
                got = server.collect(ticket)
        assert np.array_equal(got, reference)

    def test_stats_shape(self, manifests, pairs):
        with ShardedQueryServer(manifests[2], backend="process") as server:
            server.query_batch(pairs[:200])
            stats = server.stats()
        assert stats["num_shards"] == 2
        assert stats["pairs_served"] == 200
        assert stats["health"] == "ok"
        assert len(stats["shards"]) == 2
        for shard_stats in stats["shards"]:
            assert shard_stats["worker_restarts"] == [0]

    def test_bad_backend(self, manifests):
        with pytest.raises(ValueError, match="backend"):
            ShardedQueryServer(manifests[1], backend="carrier-pigeon")


class TestFaultTolerance:
    def test_shard_worker_killed_mid_ticket(self, graph, pairs, manifests):
        """SIGKILL one shard's worker between submit and collect."""
        reference = KReachIndex(graph, 6).query_batch(pairs)
        with ShardedQueryServer(
            manifests[2], workers=1, backend="process"
        ) as server:
            ticket = server.submit(pairs)
            server.servers[1]._workers[0].process.kill()
            assert np.array_equal(server.collect(ticket), reference)

    def test_explicit_restart_counts_per_worker(self, manifests, pairs):
        with ShardedQueryServer(
            manifests[2], workers=2, backend="process"
        ) as server:
            server.restart_worker(1, 0)
            server.query_batch(pairs[:200])
            stats = server.stats()
            assert stats["restarts"] == 1
            assert stats["shards"][1]["worker_restarts"] == [1, 0]
            assert stats["shards"][0]["worker_restarts"] == [0, 0]
