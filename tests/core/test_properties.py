"""Property-based tests (hypothesis) for the core invariants.

The central property of the whole reproduction: *every* index answers
exactly like bounded BFS, on arbitrary digraphs, covers, and budgets.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.general_k import CoverDistanceOracle
from repro.core.hkreach import HKReachIndex
from repro.core.kreach import KReachIndex
from repro.core.vertex_cover import (
    hhop_vertex_cover,
    is_hhop_vertex_cover,
    is_vertex_cover,
    vertex_cover_2approx,
)
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHED, bfs_distances, reaches_within_bfs


@st.composite
def digraphs(draw, max_n: int = 14):
    """A random small digraph with arbitrary edge structure."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    edge_count = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=edge_count,
        )
    )
    return DiGraph(n, edges)


@settings(max_examples=120, deadline=None)
@given(digraphs(), st.integers(min_value=0, max_value=8))
def test_kreach_equals_bfs(g, k):
    idx = KReachIndex(g, k)
    for s in range(g.n):
        truth = bfs_distances(g, s, k=k)
        for t in range(g.n):
            expected = truth[t] != UNREACHED
            assert idx.query(s, t) == expected


@settings(max_examples=60, deadline=None)
@given(digraphs())
def test_nreach_equals_reachability(g):
    idx = KReachIndex(g, None)
    for s in range(g.n):
        truth = bfs_distances(g, s)
        for t in range(g.n):
            assert idx.query(s, t) == (truth[t] != UNREACHED)


@settings(max_examples=80, deadline=None)
@given(
    digraphs(max_n=11),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=8),
)
def test_hkreach_equals_bfs(g, h, k):
    idx = HKReachIndex(g, h, k, strict=False)
    for s in range(g.n):
        for t in range(g.n):
            assert idx.query(s, t) == reaches_within_bfs(g, s, t, k), (h, k, s, t)


@settings(max_examples=100, deadline=None)
@given(digraphs())
def test_two_approx_cover_is_cover(g):
    assert is_vertex_cover(g, vertex_cover_2approx(g))


@settings(max_examples=60, deadline=None)
@given(digraphs(max_n=10), st.integers(min_value=1, max_value=3))
def test_hhop_cover_is_valid(g, h):
    cover = hhop_vertex_cover(g, h)
    assert is_hhop_vertex_cover(g, cover, h)


@settings(max_examples=60, deadline=None)
@given(digraphs(max_n=10))
def test_khop_monotone_in_k(g):
    """s ->k t implies s ->k' t for k' >= k (and the indexes agree)."""
    idx3 = KReachIndex(g, 3)
    idx5 = KReachIndex(g, 5, cover=idx3.cover)
    idx_inf = KReachIndex(g, None, cover=idx3.cover)
    for s in range(g.n):
        for t in range(g.n):
            if idx3.query(s, t):
                assert idx5.query(s, t)
            if idx5.query(s, t):
                assert idx_inf.query(s, t)


@settings(max_examples=60, deadline=None)
@given(digraphs(max_n=10))
def test_oracle_distance_matches_bfs(g):
    oracle = CoverDistanceOracle(g)
    for s in range(g.n):
        dist = bfs_distances(g, s)
        for t in range(g.n):
            got = oracle.distance(s, t)
            if dist[t] == UNREACHED:
                assert got == float("inf")
            else:
                assert got == int(dist[t])


@settings(max_examples=60, deadline=None)
@given(digraphs(max_n=10), st.integers(min_value=0, max_value=6))
def test_kreach_cover_choice_is_irrelevant(g, k):
    """Any valid vertex cover yields identical answers."""
    a = KReachIndex(g, k, cover_strategy="degree")
    b = KReachIndex(g, k, cover_strategy="greedy")
    for s in range(g.n):
        for t in range(g.n):
            assert a.query(s, t) == b.query(s, t)


@settings(max_examples=40, deadline=None)
@given(digraphs(max_n=10), st.integers(min_value=0, max_value=5))
def test_serialize_round_trip_property(g, k):
    """Saved-and-loaded indexes answer identically on every pair."""
    import tempfile
    from pathlib import Path

    from repro.core.serialize import load_kreach, save_kreach

    idx = KReachIndex(g, k)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "x.npz"
        save_kreach(idx, path)
        loaded = load_kreach(path)
    for s in range(g.n):
        for t in range(g.n):
            assert loaded.query(s, t) == idx.query(s, t)


@settings(max_examples=40, deadline=None)
@given(
    digraphs(max_n=8),
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.booleans()),
        min_size=0,
        max_size=12,
    ),
    st.integers(min_value=2, max_value=4),
)
def test_dynamic_index_matches_rebuild(g, updates, k):
    """Arbitrary insert/delete sequences preserve query equivalence."""
    from repro.core.dynamic import DynamicKReachIndex

    dyn = DynamicKReachIndex(g, k)
    for u, v, is_insert in updates:
        u %= g.n
        v %= g.n
        if u == v:
            continue
        if is_insert:
            dyn.insert_edge(u, v)
        else:
            dyn.delete_edge(u, v)
    snapshot = dyn.to_digraph()
    for s in range(g.n):
        for t in range(g.n):
            assert dyn.query(s, t) == reaches_within_bfs(snapshot, s, t, k)
