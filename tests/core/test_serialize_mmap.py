"""v4 memory-mapped format: roundtrip, diagnostics, read-only serving.

The contract under test (see ``repro/core/serialize.py``):

* a ``save_mmap`` → ``load_mmap`` roundtrip answers bit-identically to
  the in-memory index and to the v2 eager load, for every engine;
* cross-version loads (v2/v3/v4 in any wrong pairing) raise
  :class:`ValueError` naming the right loader;
* truncated files, corrupt headers, and bad section offsets raise
  :class:`ValueError` naming what is broken;
* the whole query path runs off ``mode='r'`` read-only pages without a
  single write fault — every lazily built structure is copy-on-build.
"""

import json
import zlib

import numpy as np
import pytest

from repro.core.dynamic import DynamicKReachIndex
from repro.core.kreach import KReachIndex
from repro.core.serialize import (
    _MMAP_MAGIC,
    _MMAP_PROLOGUE,
    load_dynamic,
    load_kreach,
    load_mmap,
    save_dynamic,
    save_kreach,
    save_mmap,
)
from repro.graph.generators import gnp_digraph, paper_example_graph


def saved(tmp_path, index, name="index.kr4"):
    path = tmp_path / name
    save_mmap(index, path)
    return path


def all_pairs(n):
    return np.array(
        [(s, t) for s in range(n) for t in range(n)], dtype=np.int64
    )


class TestRoundTrip:
    @pytest.mark.parametrize("k", [0, 2, 6, None])
    def test_answers_identical(self, tmp_path, k):
        g = gnp_digraph(40, 0.1, seed=2)
        index = KReachIndex(g, k)
        loaded = load_mmap(saved(tmp_path, index))
        assert loaded.k == index.k
        assert loaded.cover == index.cover
        assert loaded.weighted_edges() == index.weighted_edges()
        pairs = all_pairs(g.n)
        assert np.array_equal(loaded.query_batch(pairs), index.query_batch(pairs))
        for s, t in pairs[:200].tolist():
            assert loaded.query(s, t) == index.query(s, t)

    @pytest.mark.parametrize("k", [2, None])
    def test_v4_equals_v2_load(self, tmp_path, k):
        g = gnp_digraph(35, 0.12, seed=5)
        index = KReachIndex(g, k)
        v2 = tmp_path / "index.npz"
        save_kreach(index, v2)
        from_v2 = load_kreach(v2)
        from_v4 = load_mmap(saved(tmp_path, index))
        assert from_v2.cover == from_v4.cover
        assert from_v2.weighted_edges() == from_v4.weighted_edges()
        assert from_v2.graph == from_v4.graph
        pairs = all_pairs(g.n)
        assert np.array_equal(
            from_v2.query_batch(pairs), from_v4.query_batch(pairs)
        )

    def test_paper_example(self, tmp_path):
        g = paper_example_graph()
        ids = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
        index = KReachIndex(g, 3, cover=frozenset(ids[x] for x in "bdgi"))
        loaded = load_mmap(saved(tmp_path, index))
        assert loaded.query(ids["c"], ids["f"]) is True
        assert loaded.query(ids["c"], ids["h"]) is False

    def test_validate_mode_accepts_good_dump(self, tmp_path):
        g = gnp_digraph(30, 0.15, seed=7)
        index = KReachIndex(g, 4)
        loaded = load_mmap(saved(tmp_path, index), validate=True)
        assert loaded.weighted_edges() == index.weighted_edges()

    def test_compress_rows_at_applies(self, tmp_path):
        g = gnp_digraph(30, 0.25, seed=4)
        index = KReachIndex(g, 2)
        loaded = load_mmap(saved(tmp_path, index), compress_rows_at=2)
        assert loaded._wah  # WAH views rebuilt on load
        pairs = all_pairs(g.n)
        assert np.array_equal(loaded.query_batch(pairs), index.query_batch(pairs))

    def test_empty_cover_roundtrip(self, tmp_path):
        g = gnp_digraph(6, 0.0, seed=1)  # edgeless graph, empty cover
        index = KReachIndex(g, 3)
        loaded = load_mmap(saved(tmp_path, index))
        assert loaded.edge_count == 0
        pairs = all_pairs(g.n)
        assert np.array_equal(loaded.query_batch(pairs), index.query_batch(pairs))


class TestCrossVersion:
    """Every wrong (file, loader) pairing names the right loader."""

    def test_v4_rejected_by_load_kreach(self, tmp_path):
        index = KReachIndex(gnp_digraph(20, 0.1, seed=3), 3)
        path = saved(tmp_path, index)
        with pytest.raises(ValueError, match="load_mmap"):
            load_kreach(path)

    def test_v4_rejected_by_load_dynamic(self, tmp_path):
        index = KReachIndex(gnp_digraph(20, 0.1, seed=3), 3)
        path = saved(tmp_path, index)
        with pytest.raises(ValueError, match="load_mmap"):
            load_dynamic(path)

    def test_v2_rejected_by_load_mmap(self, tmp_path):
        index = KReachIndex(gnp_digraph(20, 0.1, seed=3), 3)
        path = tmp_path / "static.npz"
        save_kreach(index, path)
        with pytest.raises(ValueError, match="load_kreach"):
            load_mmap(path)

    def test_v3_rejected_by_load_mmap(self, tmp_path):
        g = gnp_digraph(20, 0.1, seed=3)
        dyn = DynamicKReachIndex(g, 3)
        dyn.insert_edge(0, 19)
        path = tmp_path / "dyn.npz"
        save_dynamic(dyn, path)
        with pytest.raises(ValueError, match="load_dynamic"):
            load_mmap(path)


def tampered_header(path, out_path, mutate):
    """Rewrite a v5 file with its JSON header transformed by ``mutate``.

    Section offsets are relative to the aligned payload base, so the
    payload bytes are copied verbatim behind the (possibly resized)
    header and remain addressable.  The prologue's header CRC is
    recomputed — these tests target the *structural* checks, not the
    checksum, which gets its own tests.
    """
    raw = path.read_bytes()
    hlen = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[_MMAP_PROLOGUE : _MMAP_PROLOGUE + hlen])
    mutate(header)
    blob = json.dumps(header, separators=(",", ":")).encode()
    old_base = (_MMAP_PROLOGUE + hlen + 63) // 64 * 64
    new_base = (_MMAP_PROLOGUE + len(blob) + 63) // 64 * 64
    out_path.write_bytes(
        raw[:8]
        + len(blob).to_bytes(8, "little")
        + zlib.crc32(blob).to_bytes(4, "little")
        + blob
        + b"\x00" * (new_base - _MMAP_PROLOGUE - len(blob))
        + raw[old_base:]
    )
    return out_path


class TestCorruption:
    @pytest.fixture()
    def path(self, tmp_path):
        return saved(tmp_path, KReachIndex(gnp_digraph(25, 0.12, seed=6), 3))

    def test_truncated_prologue(self, tmp_path, path):
        stub = tmp_path / "stub.kr4"
        stub.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ValueError, match="prologue"):
            load_mmap(stub)

    def test_bad_magic(self, tmp_path, path):
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTKREAC"
        bad = tmp_path / "bad.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="magic"):
            load_mmap(bad)

    def test_corrupt_header_length(self, tmp_path, path):
        raw = bytearray(path.read_bytes())
        raw[8:16] = (1 << 40).to_bytes(8, "little")
        bad = tmp_path / "len.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="header length"):
            load_mmap(bad)

    def test_corrupt_header_json(self, tmp_path, path):
        raw = bytearray(path.read_bytes())
        hlen = int.from_bytes(raw[8:16], "little")
        raw[_MMAP_PROLOGUE : _MMAP_PROLOGUE + hlen] = b"{" * hlen
        bad = tmp_path / "json.kr4"
        bad.write_bytes(bytes(raw))
        # Garbled header bytes are caught by the always-on header CRC
        # before the JSON parser ever sees them.
        with pytest.raises(ValueError, match="header checksum"):
            load_mmap(bad)

    def test_unsupported_version(self, tmp_path, path):
        bad = tampered_header(
            path, tmp_path / "v9.kr4",
            lambda h: h.update(format_version=9),
        )
        with pytest.raises(ValueError, match="version 9"):
            load_mmap(bad)

    def test_missing_section(self, tmp_path, path):
        bad = tampered_header(
            path, tmp_path / "missing.kr4",
            lambda h: h["sections"].pop("row_keys"),
        )
        with pytest.raises(ValueError, match="missing section 'row_keys'"):
            load_mmap(bad)

    def test_bad_offset_runs_past_eof(self, tmp_path, path):
        def mutate(h):
            h["sections"]["index_targets"]["offset"] += 1 << 24

        bad = tampered_header(path, tmp_path / "offset.kr4", mutate)
        with pytest.raises(ValueError, match="truncated.*'index_targets'"):
            load_mmap(bad)

    def test_misaligned_offset(self, tmp_path, path):
        def mutate(h):
            h["sections"]["cover_ids"]["offset"] += 8

        bad = tampered_header(path, tmp_path / "align.kr4", mutate)
        with pytest.raises(ValueError, match="misaligned.*'cover_ids'"):
            load_mmap(bad)

    def test_wrong_dtype(self, tmp_path, path):
        def mutate(h):
            h["sections"]["row_keys"]["dtype"] = "<i4"

        bad = tampered_header(path, tmp_path / "dtype.kr4", mutate)
        with pytest.raises(ValueError, match="'row_keys' declares dtype"):
            load_mmap(bad)

    def test_truncated_payload(self, tmp_path, path):
        raw = path.read_bytes()
        bad = tmp_path / "trunc.kr4"
        bad.write_bytes(raw[: len(raw) - (len(raw) // 4)])
        with pytest.raises(ValueError, match="truncated"):
            load_mmap(bad)

    def test_inconsistent_indptr(self, tmp_path, path):
        def mutate(h):
            h["sections"]["index_indptr"]["count"] -= 1

        bad = tampered_header(path, tmp_path / "indptr.kr4", mutate)
        with pytest.raises(ValueError, match="'index_indptr'"):
            load_mmap(bad)

    def test_corrupt_cover_id_rejected_at_open(self, tmp_path, path):
        """A flipped sign bit in cover_ids must fail loudly at open, not
        silently corrupt the cover-flag scatter."""
        raw = bytearray(path.read_bytes())
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[_MMAP_PROLOGUE : _MMAP_PROLOGUE + hlen])
        sec = header["sections"]["cover_ids"]
        base = (_MMAP_PROLOGUE + hlen + 63) // 64 * 64
        start = base + sec["offset"]
        arr = np.frombuffer(
            bytes(raw[start : start + sec["count"] * 8]), dtype=np.int64
        ).copy()
        arr[0] = -arr[-1] - 1  # negative id; count/dtype/alignment still fine
        raw[start : start + sec["count"] * 8] = arr.tobytes()
        bad = tmp_path / "cover.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="'cover_ids'"):
            load_mmap(bad)

    def test_validate_catches_tampered_rows(self, tmp_path, path):
        # Reverse the target array's bytes: structurally plausible (every
        # O(1) header check passes) but the rows are no longer sorted.
        raw = bytearray(path.read_bytes())
        hlen = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[_MMAP_PROLOGUE : _MMAP_PROLOGUE + hlen])
        sec = header["sections"]["index_targets"]
        base = (_MMAP_PROLOGUE + hlen + 63) // 64 * 64
        start = base + sec["offset"]
        stop = start + sec["count"] * 8
        arr = np.frombuffer(bytes(raw[start:stop]), dtype=np.int64)[::-1]
        raw[start:stop] = arr.tobytes()
        bad = tmp_path / "rows.kr4"
        bad.write_bytes(bytes(raw))
        with pytest.raises(ValueError):
            load_mmap(bad, validate=True)

    def test_bad_mode_rejected(self, path):
        with pytest.raises(ValueError, match="mode"):
            load_mmap(path, mode="r+")


class TestReadOnlyServing:
    """The full engine matrix runs off mode='r' pages with no write fault."""

    @pytest.mark.parametrize("k", [2, 6, None])
    @pytest.mark.parametrize("engine", ["scalar", "bitset", "chunked"])
    def test_engine_matrix(self, tmp_path, k, engine):
        g = gnp_digraph(45, 0.09, seed=9)
        index = KReachIndex(g, k)
        loaded = load_mmap(saved(tmp_path, index), mode="r")
        # The mapped arrays really are read-only...
        ig = loaded.index_graph
        for arr in (ig.cover_ids, ig.indptr, ig.targets, ig.packed.words,
                    ig.keys(), ig.weights64(), loaded.graph.out_indices):
            assert not arr.flags.writeable
        with pytest.raises(ValueError):
            ig.targets[0] = 0
        # ...and the whole engine matrix runs without a write fault.
        loaded.prepare_batch()
        pairs = all_pairs(g.n)
        expected = index.query_batch(pairs)
        assert np.array_equal(loaded.query_batch(pairs, engine=engine), expected)
        for s, t in pairs[: 3 * g.n].tolist():
            assert loaded.query(s, t) == index.query(s, t)

    def test_read_only_wah_rows(self, tmp_path):
        g = gnp_digraph(30, 0.25, seed=8)
        index = KReachIndex(g, 2)
        loaded = load_mmap(saved(tmp_path, index), mode="r", compress_rows_at=2)
        pairs = all_pairs(g.n)
        assert np.array_equal(loaded.query_batch(pairs), index.query_batch(pairs))

    def test_read_only_in_memory_structures(self):
        """HKReach and the distance oracle also tolerate frozen arrays."""
        from repro.core.general_k import CoverDistanceOracle
        from repro.core.hkreach import HKReachIndex

        g = gnp_digraph(40, 0.1, seed=11)
        pairs = all_pairs(g.n)
        hk = HKReachIndex(g, 2, 6)
        oracle = CoverDistanceOracle(g)
        reference_hk = hk.query_batch(pairs).copy()
        reference_d = oracle.distance_batch(pairs).copy()
        for ig in (hk.index_graph, oracle.index_graph):
            for arr in (ig.cover_ids, ig.indptr, ig.targets, ig.packed.words):
                arr.setflags(write=False)
        for g_arr in (g.out_indptr, g.out_indices, g.in_indptr, g.in_indices):
            g_arr.setflags(write=False)
        hk2 = HKReachIndex(g, 2, 6, cover=hk.cover)
        # run against the frozen arrays of the original structures
        assert np.array_equal(hk.query_batch(pairs, engine="bitset"), reference_hk)
        assert np.array_equal(hk.query_batch(pairs, engine="scalar"), reference_hk)
        assert np.array_equal(oracle.distance_batch(pairs), reference_d)
        assert np.array_equal(
            oracle.reaches_within_batch(pairs, 4), reference_d <= 4
        )
        assert np.array_equal(hk2.query_batch(pairs), reference_hk)


class TestOpenCost:
    def test_open_does_not_materialize_adjacency(self, tmp_path):
        """The O(header) open must not build the O(n) adjacency lists."""
        g = gnp_digraph(60, 0.08, seed=12)
        loaded = load_mmap(saved(tmp_path, KReachIndex(g, 3)))
        assert loaded._out_lists is None and loaded._in_lists is None
        assert loaded._scalar is None and loaded._keyed_rows is None
        assert loaded.query(0, 1) in (True, False)  # lazily built on use

    def test_case1_query_skips_adjacency_build(self, tmp_path):
        """A covered-pair scalar query needs no O(n + m) adjacency lists."""
        g = gnp_digraph(60, 0.08, seed=12)
        loaded = load_mmap(saved(tmp_path, KReachIndex(g, 3)))
        u, v = sorted(loaded.cover)[:2]
        assert loaded.query(u, v) in (True, False)  # Case 1
        assert loaded._out_lists is None and loaded._in_lists is None
        uncovered = next(x for x in range(g.n) if x not in loaded.cover)
        loaded.query(u, uncovered)  # Case 2 builds only the in-direction
        assert loaded._in_lists is not None and loaded._out_lists is None

    def test_zero_copy_views(self, tmp_path):
        """Loaded arrays are views into one shared mapping, not copies."""
        import mmap

        g = gnp_digraph(30, 0.1, seed=13)
        loaded = load_mmap(saved(tmp_path, KReachIndex(g, 3)))
        ig = loaded.index_graph
        bases = {
            id(arr.base)
            for arr in (ig.cover_ids, ig.targets, ig.keys(), ig.weights64())
        }
        assert len(bases) == 1  # one buffer backs them all...
        raw = ig.cover_ids.base.base  # ...and that buffer is the mapping
        assert isinstance(raw, memoryview) and isinstance(raw.obj, mmap.mmap)
