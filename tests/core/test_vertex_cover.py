"""Vertex cover and h-hop vertex cover tests."""

from itertools import combinations

import numpy as np
import pytest

from repro.core.vertex_cover import (
    COVER_STRATEGIES,
    cover_from_strategy,
    greedy_vertex_cover,
    hhop_vertex_cover,
    is_hhop_vertex_cover,
    is_vertex_cover,
    vertex_cover_2approx,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_digraph,
    cycle_graph,
    gnp_digraph,
    paper_example_graph,
    path_graph,
    star_graph,
)

from tests.conftest import graph_corpus


def minimum_cover_size(g: DiGraph) -> int:
    """Exhaustive minimum vertex cover (tiny graphs only)."""
    edges = [(u, v) for u, v in g.edges() if u != v]
    if not edges:
        return 0
    for size in range(0, g.n + 1):
        for subset in combinations(range(g.n), size):
            s = set(subset)
            if all(u in s or v in s for u, v in edges):
                return size
    return g.n


class TestTwoApprox:
    @pytest.mark.parametrize("order", ["degree", "random", "input"])
    def test_is_cover_on_corpus(self, order):
        for g in graph_corpus():
            cover = vertex_cover_2approx(g, order=order)
            assert is_vertex_cover(g, cover), (g, order)

    def test_empty_graph(self):
        assert vertex_cover_2approx(DiGraph(5)) == frozenset()

    def test_single_edge(self):
        cover = vertex_cover_2approx(DiGraph(2, [(0, 1)]))
        assert cover == frozenset({0, 1})

    @pytest.mark.parametrize("seed", range(6))
    def test_approximation_ratio(self, seed):
        g = gnp_digraph(10, 0.25, seed=seed)
        cover = vertex_cover_2approx(g, order="random", rng=np.random.default_rng(seed))
        assert len(cover) <= 2 * minimum_cover_size(g)

    def test_degree_order_includes_hub(self):
        g = star_graph(30)
        cover = vertex_cover_2approx(g, order="degree")
        assert 0 in cover

    def test_include_degree_threshold(self):
        g = star_graph(20)
        cover = vertex_cover_2approx(g, include_degree_at_least=5)
        assert 0 in cover
        assert is_vertex_cover(g, cover)

    def test_include_degree_threshold_covers_several_hubs(self):
        # two stars joined at spokes
        edges = [(0, i) for i in range(2, 12)] + [(1, i) for i in range(2, 12)]
        g = DiGraph(12, edges)
        cover = vertex_cover_2approx(g, include_degree_at_least=10)
        assert {0, 1} <= cover

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            vertex_cover_2approx(path_graph(3), order="bogus")

    def test_cover_is_matching_based(self):
        # the picked edges form a matching, so cover size is even when no
        # seeding happened and the graph has edges
        g = gnp_digraph(20, 0.2, seed=1)
        cover = vertex_cover_2approx(g, order="input")
        assert len(cover) % 2 == 0

    def test_deterministic_given_order(self):
        g = gnp_digraph(20, 0.2, seed=2)
        assert vertex_cover_2approx(g, order="degree") == vertex_cover_2approx(
            g, order="degree"
        )


class TestGreedy:
    def test_is_cover_on_corpus(self):
        for g in graph_corpus():
            assert is_vertex_cover(g, greedy_vertex_cover(g))

    def test_star_uses_only_hub(self):
        assert greedy_vertex_cover(star_graph(20)) == frozenset({0})

    def test_empty(self):
        assert greedy_vertex_cover(DiGraph(4)) == frozenset()

    def test_deterministic(self):
        for seed in range(4):
            g = gnp_digraph(40, 0.1, seed=seed)
            assert greedy_vertex_cover(g) == greedy_vertex_cover(g)

    def test_never_picks_isolated_vertices(self):
        """The bucket rewrite only ever picks vertices with live edges."""
        for seed in range(3):
            g = gnp_digraph(30, 0.12, seed=seed)
            incident = {u: set() for u in range(g.n)}
            for u, v in g.edges():
                if u != v:
                    incident[u].add(v)
                    incident[v].add(u)
            cover = greedy_vertex_cover(g)
            assert is_vertex_cover(g, cover)
            for v in cover:
                assert incident[v], v

    def test_matches_reference_simulation(self):
        """Differential: the vectorized CSR adjacency + array buckets pick
        exactly what a plain dict-of-sets implementation of the same
        greedy rule (LIFO degree buckets, lazily invalidated) picks."""
        for seed in range(4):
            g = gnp_digraph(25, 0.15, seed=seed)
            adjacency = {u: set() for u in range(g.n)}
            for u, v in g.edges():
                if u != v:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
            degree = {u: len(nbrs) for u, nbrs in adjacency.items()}
            max_deg = max(degree.values(), default=0)
            buckets = [[] for _ in range(max_deg + 1)]
            for u in range(g.n):
                if degree[u]:
                    buckets[degree[u]].append(u)
            expected = []
            current = max_deg
            while current > 0:
                if not buckets[current]:
                    current -= 1
                    continue
                u = buckets[current].pop()
                if degree[u] != current:
                    continue
                expected.append(u)
                degree[u] = 0
                for w in sorted(adjacency[u]):
                    if degree[w]:
                        degree[w] -= 1
                        if degree[w]:
                            buckets[degree[w]].append(w)
            assert greedy_vertex_cover(g) == frozenset(expected), seed


class TestHHopCover:
    def test_h1_equals_vertex_cover_semantics(self):
        g = paper_example_graph()
        cover = hhop_vertex_cover(g, 1)
        assert is_vertex_cover(g, cover)

    @pytest.mark.parametrize("h", [1, 2, 3])
    def test_is_hhop_cover_on_corpus(self, h):
        for g in graph_corpus():
            cover = hhop_vertex_cover(g, h)
            assert is_hhop_vertex_cover(g, cover, h), (g, h)

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            hhop_vertex_cover(path_graph(3), 0)
        with pytest.raises(ValueError):
            is_hhop_vertex_cover(path_graph(3), set(), 0)

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            hhop_vertex_cover(path_graph(5), 2, order="bogus")

    def test_path_2hop_cover_smaller_than_vc(self):
        # On a long path, a 2-hop cover needs ~n/3 vertices vs ~n/2 for VC.
        g = path_graph(30)
        vc = hhop_vertex_cover(g, 1)
        vc2 = hhop_vertex_cover(g, 2)
        assert len(vc2) <= len(vc)

    def test_short_path_needs_no_2hop_cover(self):
        # a single edge has no path of length 2
        g = DiGraph(2, [(0, 1)])
        assert hhop_vertex_cover(g, 2) == frozenset()
        assert is_hhop_vertex_cover(g, frozenset(), 2)

    def test_cycle_needs_cover(self):
        g = cycle_graph(6)
        assert not is_hhop_vertex_cover(g, frozenset(), 2)
        cover = hhop_vertex_cover(g, 2)
        assert is_hhop_vertex_cover(g, cover, 2)

    def test_lemma1_i_hop_cover_is_j_hop_cover(self):
        # Lemma 1: an i-hop vertex cover is a j-hop cover for j >= i.
        for g in graph_corpus():
            cover = hhop_vertex_cover(g, 2)
            assert is_hhop_vertex_cover(g, cover, 2)
            assert is_hhop_vertex_cover(g, cover, 3)
            assert is_hhop_vertex_cover(g, cover, 4)

    def test_paper_2hop_cover_valid(self):
        g = paper_example_graph()
        ids = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
        assert is_hhop_vertex_cover(g, {ids["d"], ids["e"], ids["g"]}, 2)
        # but it is NOT a 1-hop vertex cover (edge a->b uncovered)
        assert not is_vertex_cover(g, {ids["d"], ids["e"], ids["g"]})

    def test_approximation_ratio_bound(self):
        # (h+1)-approximation: compare against a crude lower bound of the
        # optimum via vertex-disjoint length-h paths picked by the algorithm.
        g = path_graph(40)
        cover = hhop_vertex_cover(g, 2)
        # optimum for a path of n vertices is floor(n/3); ratio <= 3
        assert len(cover) <= 3 * (40 // 3)


class TestDispatch:
    def test_all_strategies_produce_covers(self):
        g = gnp_digraph(15, 0.2, seed=0)
        for strategy in COVER_STRATEGIES:
            cover = cover_from_strategy(g, strategy)
            assert is_vertex_cover(g, cover), strategy

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown cover strategy"):
            cover_from_strategy(path_graph(3), "nope")
