"""Consistency checks for the recorded published numbers."""

from repro.datasets import DATASET_NAMES, paper_tables


INDEX_LABELS = {"n-reach", "PTree", "3-hop", "GRAIL", "PWAH"}


class TestTableCompleteness:
    def test_table3_covers_all_datasets_and_indexes(self):
        assert set(paper_tables.CONSTRUCTION_MS) == set(DATASET_NAMES)
        for row in paper_tables.CONSTRUCTION_MS.values():
            assert set(row) == INDEX_LABELS

    def test_table4_covers_all(self):
        assert set(paper_tables.INDEX_SIZE_MB) == set(DATASET_NAMES)

    def test_table5_covers_all(self):
        assert set(paper_tables.QUERY_MS_1M) == set(DATASET_NAMES)

    def test_table7_covers_all(self):
        assert set(paper_tables.KREACH_QUERY_MS_1M) == set(DATASET_NAMES)
        assert set(paper_tables.MU_BFS_MS_1M) == set(DATASET_NAMES)
        assert set(paper_tables.MU_DIST_MS_1M) == set(DATASET_NAMES)

    def test_table8_rows_sum_to_100(self):
        for name, cases in paper_tables.CASE_PERCENTAGES.items():
            assert abs(sum(cases) - 100.0) < 0.5, name

    def test_table9_subset(self):
        assert set(paper_tables.COVER_SIZES) <= set(DATASET_NAMES)
        for vc, vc2, t_mu, t_2mu in paper_tables.COVER_SIZES.values():
            assert vc2 < vc  # Corollary 1's practical effect
            assert t_2mu > t_mu  # the tradeoff costs query time

    def test_rankings_are_permutation_like(self):
        for metric in paper_tables.RANKINGS.values():
            assert sorted(metric.values()) == [1, 2, 3, 4, 5]


class TestShapeClaims:
    """The paper's headline comparisons, as recorded."""

    def test_nreach_fastest_queries_on_most_datasets(self):
        wins = sum(
            1
            for row in paper_tables.QUERY_MS_1M.values()
            if row["n-reach"] == min(v for v in row.values() if v is not None)
        )
        assert wins >= 10  # "fastest in almost all cases"

    def test_nreach_builds_faster_than_ptree_everywhere(self):
        for name, row in paper_tables.CONSTRUCTION_MS.items():
            assert row["n-reach"] < row["PTree"], name

    def test_mu_bfs_orders_slower_than_kreach(self):
        for name in DATASET_NAMES:
            mu_reach = paper_tables.KREACH_QUERY_MS_1M[name]["mu"]
            assert paper_tables.MU_BFS_MS_1M[name] > 50 * mu_reach, name

    def test_kreach_flat_in_k(self):
        for name, row in paper_tables.KREACH_QUERY_MS_1M.items():
            values = list(row.values())
            assert max(values) / min(values) < 1.25, name

    def test_3hop_fails_on_majority(self):
        failures = sum(
            1
            for row in paper_tables.CONSTRUCTION_MS.values()
            if row["3-hop"] is None
        )
        assert failures >= 8
