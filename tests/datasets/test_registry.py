"""Dataset registry tests: completeness, determinism, loose calibration."""

import pytest

from repro.datasets import DATASET_NAMES, DATASETS, load, spec
from repro.datasets.registry import _stable_seed
from repro.graph.scc import condensation
from repro.graph.stats import summarize


class TestRegistryShape:
    def test_fifteen_datasets(self):
        assert len(DATASETS) == 15
        assert set(DATASET_NAMES) == set(DATASETS)

    def test_paper_table2_rows_recorded(self):
        agro = spec("AgroCyc")
        assert (agro.n, agro.m) == (13969, 17694)
        assert (agro.n_dag, agro.m_dag) == (12684, 13657)
        assert (agro.deg_max, agro.diameter, agro.mu) == (5488, 10, 2)

    def test_case_insensitive_lookup(self):
        assert spec("agrocyc").name == "AgroCyc"
        assert spec("YAGO").name == "YAGO"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            spec("nonexistent")

    def test_families_assigned(self):
        families = {s.family for s in DATASETS.values()}
        assert families == {
            "metabolic",
            "metabolic-core",
            "citation",
            "xml",
            "ontology",
            "semantic",
        }


class TestBuild:
    def test_scale_controls_size(self):
        small = load("GO", scale=0.1)
        smaller = load("GO", scale=0.05)
        assert small.n == int(6793 * 0.1)
        assert smaller.n < small.n

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load("GO", scale=0)

    def test_deterministic_default_seed(self):
        assert load("Nasa", scale=0.1) == load("Nasa", scale=0.1)

    def test_explicit_seed_changes_graph(self):
        assert load("Nasa", scale=0.1, seed=1) != load("Nasa", scale=0.1, seed=2)

    def test_stable_seed_is_stable(self):
        # guards against PYTHONHASHSEED-dependent behavior
        assert _stable_seed("AgroCyc") == _stable_seed("AgroCyc")
        assert _stable_seed("AgroCyc") != _stable_seed("Kegg")


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_loose_calibration_bands(name):
    """Structural fidelity of every stand-in at small scale.

    Loose on purpose: the calibration targets the *shape* k-reach interacts
    with, not exact statistics.
    """
    s = spec(name)
    scale = 0.15
    g = s.build(scale=scale)
    assert g.n == max(16, int(s.n * scale))
    # edge count within 40%
    assert abs(g.m - s.m * scale) / (s.m * scale) < 0.4, g.m
    cond = condensation(g)
    published_dag_ratio = s.n_dag / s.n
    ours_dag_ratio = cond.dag.n / g.n
    if published_dag_ratio > 0.95:
        assert ours_dag_ratio > 0.9
    elif published_dag_ratio < 0.5:
        assert ours_dag_ratio < 0.6
    # diameter within a factor of 2 of the published value
    summ = summarize(g, sample_size=min(g.n, 500))
    assert summ.diameter <= 2 * s.diameter + 2
    assert summ.diameter >= max(2, s.diameter // 2 - 1)
    # mu within +-3 hops
    assert abs(summ.mu - s.mu) <= 3
