"""Synthetic generator family tests: structural signatures per family."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    citation_graph,
    metabolic_core_graph,
    metabolic_graph,
    semantic_graph,
    xml_graph,
)
from repro.graph.scc import condensation
from repro.graph.topo import is_acyclic


class TestMetabolic:
    def test_exact_n_and_close_m(self):
        g = metabolic_graph(2000, 2600, seed=1)
        assert g.n == 2000
        assert abs(g.m - 2600) / 2600 < 0.25

    def test_hub_degree_fraction(self):
        g = metabolic_graph(2000, 2600, hub_degree_fraction=0.4, seed=1)
        assert g.degree(0) > 0.3 * 2000

    def test_reaction_loops_bound_scc_size(self):
        g = metabolic_graph(2000, 2600, seed=2)
        cond = condensation(g)
        # SCCs come only from the star-shaped reaction loops
        assert int(cond.component_sizes.max()) <= 12
        # the DAG deficit should be near the requested fraction
        deficit = (g.n - cond.dag.n) / g.n
        assert 0.02 < deficit < 0.2

    def test_deterministic(self):
        assert metabolic_graph(1000, 1300, seed=5) == metabolic_graph(
            1000, 1300, seed=5
        )

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            metabolic_graph(10, 20)


class TestMetabolicCore:
    def test_giant_scc(self):
        g = metabolic_core_graph(2000, 4800, core_fraction=0.7, seed=1)
        cond = condensation(g)
        assert int(cond.component_sizes.max()) >= 0.6 * 2000
        # |V_DAG| far below |V|
        assert cond.dag.n < 0.5 * g.n

    def test_small_cover_signature(self):
        # hub-mediated core: the vertex cover stays a small fraction of n
        # (the paper's Table 9 signature for aMaze/Kegg)
        from repro.core.vertex_cover import vertex_cover_2approx

        g = metabolic_core_graph(2000, 4800, seed=2)
        cover = vertex_cover_2approx(g)
        assert len(cover) < 0.25 * g.n

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            metabolic_core_graph(5, 10)


class TestCitation:
    def test_pure_dag(self):
        g = citation_graph(1500, 9000, seed=1)
        assert is_acyclic(g)
        cond = condensation(g)
        assert cond.dag.n == g.n  # |V_DAG| == |V| like ArXiv/CiteSeer

    def test_edges_point_backward(self):
        g = citation_graph(500, 2000, seed=2)
        assert all(u > v for u, v in g.edges())

    def test_window_bounds_jumps(self):
        g = citation_graph(1000, 3000, window_fraction=0.02, seed=3)
        window = max(2, int(0.02 * 1000))
        assert all(u - v <= window for u, v in g.edges())

    def test_preferential_concentrates_indegree(self):
        flat = citation_graph(1500, 9000, preferential=0.0, seed=4)
        skewed = citation_graph(1500, 9000, preferential=0.8, seed=4)
        assert skewed.in_degrees().max() > 2 * flat.in_degrees().max()

    def test_too_small(self):
        with pytest.raises(ValueError):
            citation_graph(2, 2)


class TestXml:
    def test_tree_plus_refs_acyclic(self):
        g = xml_graph(1000, 1400, seed=1)
        assert is_acyclic(g)
        assert g.n == 1000

    def test_trunk_depth_deepens(self):
        from repro.graph.stats import shortest_path_stats

        shallow = xml_graph(800, 900, branching=6, trunk_depth=None, seed=2)
        deep = xml_graph(800, 900, branching=2, trunk_depth=20, seed=2)
        d_shallow, _ = shortest_path_stats(shallow, sample_size=None)
        d_deep, _ = shortest_path_stats(deep, sample_size=None)
        assert d_deep > d_shallow

    def test_caterpillar_cover_stays_on_trunks(self):
        from repro.core.vertex_cover import vertex_cover_2approx

        g = xml_graph(1000, 1300, branching=2, trunk_depth=15, seed=4)
        cover = vertex_cover_2approx(g)
        assert len(cover) < 0.6 * g.n

    def test_hub_fraction_creates_catalog_node(self):
        g = xml_graph(800, 1600, hub_fraction=0.9, seed=3)
        assert g.out_degree(0) > 0.5 * (1600 - 799)

    def test_too_small(self):
        with pytest.raises(ValueError):
            xml_graph(1, 1)


class TestSemantic:
    def test_dag_with_exact_n(self):
        g = semantic_graph(1200, 4000, seed=1)
        assert g.n == 1200
        assert is_acyclic(g)

    def test_skew_concentrates_parents(self):
        flat = semantic_graph(1200, 4000, levels=3, hub_skew=0.0, seed=2)
        skewed = semantic_graph(1200, 4000, levels=3, hub_skew=1.8, seed=2)
        assert skewed.in_degrees().max() > 1.5 * flat.in_degrees().max()

    def test_spine_lengthens_diameter(self):
        from repro.graph.stats import shortest_path_stats

        base = semantic_graph(1000, 3000, levels=2, spine_length=0, seed=3)
        spined = semantic_graph(1000, 3000, levels=2, spine_length=12, seed=3)
        d_base, _ = shortest_path_stats(base, sample_size=None)
        d_spined, _ = shortest_path_stats(spined, sample_size=None)
        assert d_spined >= d_base + 8

    def test_too_small(self):
        with pytest.raises(ValueError):
            semantic_graph(3, 5, levels=10)
