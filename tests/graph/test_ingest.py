"""Streamed external-sort ingest tests.

The contract under test: :func:`~repro.graph.ingest.ingest_edge_list`
must produce a :class:`DiGraph` bit-identical to the eager
:func:`~repro.graph.io.read_edge_list` (which itself must match a
hand-built ``DiGraph``) for every input shape — duplicate edges,
self-loops, comments, gzip, block boundaries — while keeping its sort
buffer within the configured budget and cleaning up every spill file,
even when a fault fires mid-spill.
"""

import gzip
import os

import numpy as np
import pytest

from repro import faults
from repro.graph.digraph import DiGraph
from repro.graph.ingest import IngestStats, ingest_edge_list, parse_edge_block
from repro.graph.io import read_edge_list, write_edge_list


def assert_same_graph(a: DiGraph, b: DiGraph) -> None:
    assert a.n == b.n
    assert np.array_equal(a.out_indptr, b.out_indptr)
    assert np.array_equal(a.out_indices, b.out_indices)
    assert np.array_equal(a.in_indptr, b.in_indptr)
    assert np.array_equal(a.in_indices, b.in_indices)


class TestParseEdgeBlock:
    def test_basic(self):
        u, v = parse_edge_block(b"0 1\n2 3\n")
        assert u.tolist() == [0, 2] and v.tolist() == [1, 3]

    def test_bytes_and_array_inputs_agree(self):
        raw = b"10 20\n30 40\n"
        ub, vb = parse_edge_block(raw)
        ua, va = parse_edge_block(np.frombuffer(raw, dtype=np.uint8))
        assert np.array_equal(ub, ua) and np.array_equal(vb, va)

    def test_comments_blanks_and_extra_columns(self):
        u, v = parse_edge_block(b"# header\n\n  % note\n1 2 weight=9\n 3\t4 \n")
        assert u.tolist() == [1, 3]
        assert v.tolist() == [2, 4]

    def test_no_trailing_newline(self):
        u, v = parse_edge_block(b"5 6\n7 8")
        assert u.tolist() == [5, 7] and v.tolist() == [6, 8]

    def test_single_token_line_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_edge_block(b"0 1\n7\n", path="x.el")

    def test_non_numeric_token_rejected(self):
        with pytest.raises(ValueError, match="x.el:2.*non-negative"):
            parse_edge_block(b"0 1\n-3 4\n", path="x.el")

    def test_too_large_integer_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            parse_edge_block(b"1 9999999999999999999\n")

    def test_lineno_offset_in_errors(self):
        with pytest.raises(ValueError, match="f:12"):
            parse_edge_block(b"0 1\nbad bad\n", path="f", first_lineno=11)

    def test_empty_and_blank_blocks(self):
        for raw in (b"", b"\n\n", b"# only comments\n"):
            u, v = parse_edge_block(raw)
            assert u.size == 0 and v.size == 0

    def test_18_digit_values_survive(self):
        u, v = parse_edge_block(b"123456789012345678 1\n")
        assert u.tolist() == [123456789012345678]


class TestIngestDifferential:
    def make_file(self, tmp_path, *, edges=4000, n=500, seed=0, gz=False):
        rng = np.random.default_rng(seed)
        e = rng.integers(0, n, size=(edges, 2))
        e[:: max(1, edges // 7)] = e[0]  # duplicate edges
        loops = rng.integers(0, n, size=max(2, edges // 50))
        lines = ["# generated test file", "% second comment style", ""]
        lines += [f"{a} {b}" for a, b in e.tolist()]
        lines += [f"{x} {x}" for x in loops.tolist()]  # self-loops
        payload = ("\n".join(lines) + "\n").encode()
        path = tmp_path / ("edges.txt.gz" if gz else "edges.txt")
        if gz:
            path.write_bytes(gzip.compress(payload))
        else:
            path.write_bytes(payload)
        return path, np.vstack([e, np.column_stack([loops, loops])])

    def test_matches_eager_and_hand_built(self, tmp_path):
        path, edges = self.make_file(tmp_path)
        hand = DiGraph(int(edges.max()) + 1, edges)
        eager = read_edge_list(path)
        streamed = ingest_edge_list(path)
        assert_same_graph(hand, eager)
        assert_same_graph(eager, streamed)

    def test_gzip_transparency(self, tmp_path):
        plain, _ = self.make_file(tmp_path, seed=1)
        gz, _ = self.make_file(tmp_path, seed=1, gz=True)
        assert_same_graph(read_edge_list(gz), ingest_edge_list(gz))
        assert_same_graph(ingest_edge_list(plain), ingest_edge_list(gz))

    def test_multi_block_boundaries(self, tmp_path):
        # A tight budget shrinks the read block to 16 KiB, so a ~130 KiB
        # file crosses many block boundaries mid-line.
        path, _ = self.make_file(tmp_path, edges=10_000, n=30_000, seed=2)
        assert path.stat().st_size > 3 * (16 << 10)
        streamed = ingest_edge_list(path, memory_mb=0.07)
        assert_same_graph(read_edge_list(path), streamed)

    def test_budget_forces_external_merge(self, tmp_path):
        path, _ = self.make_file(tmp_path, edges=30_000, n=40_000, seed=3)
        stats = IngestStats()
        streamed = ingest_edge_list(path, memory_mb=0.07, stats=stats)
        assert stats.spill_runs >= 3
        assert 0 < stats.max_buffered_bytes <= stats.budget_bytes
        assert stats.lines_parsed >= 30_000
        assert stats.edges == streamed.out_indices.size
        assert stats.n == streamed.n
        assert_same_graph(read_edge_list(path), streamed)

    def test_round_trip_with_write_edge_list(self, tmp_path):
        g = DiGraph(40, np.random.default_rng(4).integers(0, 40, size=(200, 2)))
        path = tmp_path / "g.el"
        write_edge_list(g, path)
        assert_same_graph(g, ingest_edge_list(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.el"
        path.write_bytes(b"")
        g = ingest_edge_list(path)
        assert g.n == 0 and g.m == 0

    def test_forced_n(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n")
        assert ingest_edge_list(path, n=10).n == 10

    def test_forced_n_out_of_range(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 99\n")
        with pytest.raises(ValueError, match="out of range"):
            ingest_edge_list(path, n=10)

    def test_invalid_budget(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n")
        with pytest.raises(ValueError):
            ingest_edge_list(path, memory_mb=0)

    def test_env_budget_honored(self, tmp_path, monkeypatch):
        path, _ = self.make_file(tmp_path, edges=2000, n=300, seed=5)
        monkeypatch.setenv("KREACH_INGEST_MB", "0.07")
        stats = IngestStats()
        streamed = ingest_edge_list(path, stats=stats)
        assert stats.budget_bytes == int(0.07 * (1 << 20))
        assert_same_graph(read_edge_list(path), streamed)


class TestSpillCleanup:
    def test_spill_files_removed_on_success(self, tmp_path):
        path = tmp_path / "g.el"
        rng = np.random.default_rng(6)
        e = rng.integers(0, 40_000, size=(30_000, 2))
        path.write_text("\n".join(f"{a} {b}" for a, b in e.tolist()) + "\n")
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        stats = IngestStats()
        ingest_edge_list(path, memory_mb=0.07, tmp_dir=spill_dir, stats=stats)
        assert stats.spill_runs >= 3
        assert os.listdir(spill_dir) == []

    def test_spill_files_removed_on_injected_fault(self, tmp_path):
        path = tmp_path / "g.el"
        rng = np.random.default_rng(7)
        e = rng.integers(0, 40_000, size=(30_000, 2))
        path.write_text("\n".join(f"{a} {b}" for a, b in e.tolist()) + "\n")
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        with faults.inject("ingest.spill_write", "error"):
            with pytest.raises(faults.FaultInjected):
                ingest_edge_list(path, memory_mb=0.07, tmp_dir=spill_dir)
        assert os.listdir(spill_dir) == []

    def test_parse_error_cleans_up(self, tmp_path):
        path = tmp_path / "g.el"
        rng = np.random.default_rng(8)
        e = rng.integers(0, 40_000, size=(30_000, 2))
        body = "\n".join(f"{a} {b}" for a, b in e.tolist())
        path.write_text(body + "\nBROKEN LINE HERE x\n")
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        with pytest.raises(ValueError, match="non-negative"):
            ingest_edge_list(path, memory_mb=0.07, tmp_dir=spill_dir)
        assert os.listdir(spill_dir) == []
