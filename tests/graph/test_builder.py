"""GraphBuilder tests."""

import pytest

from repro.graph.builder import GraphBuilder


class TestGraphBuilder:
    def test_empty(self):
        g = GraphBuilder().build()
        assert g.n == 0 and g.m == 0

    def test_grows_universe_on_demand(self):
        b = GraphBuilder()
        b.add_edge(0, 5)
        assert b.n == 6

    def test_initial_size_preserved(self):
        b = GraphBuilder(10)
        b.add_edge(0, 1)
        assert b.build().n == 10

    def test_negative_initial_size(self):
        with pytest.raises(ValueError):
            GraphBuilder(-1)

    def test_negative_vertex(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_edge(-1, 0)

    def test_add_vertex_returns_fresh_id(self):
        b = GraphBuilder(3)
        assert b.add_vertex() == 3
        assert b.add_vertex() == 4

    def test_add_edges(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2)])
        assert b.edge_count == 2

    def test_add_path(self):
        b = GraphBuilder()
        b.add_path([0, 1, 2, 3])
        g = b.build()
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(2, 3)
        assert g.m == 3

    def test_add_path_single_vertex(self):
        b = GraphBuilder()
        b.add_path([4])
        assert b.edge_count == 0 and b.n == 5

    def test_add_cycle(self):
        b = GraphBuilder()
        b.add_cycle([0, 1, 2])
        g = b.build()
        assert g.has_edge(2, 0)
        assert g.m == 3

    def test_add_cycle_too_short(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_cycle([0])

    def test_self_loops_follow_flag(self):
        b = GraphBuilder(allow_self_loops=True)
        b.add_edge(0, 0)
        assert b.build().m == 1
        b2 = GraphBuilder()
        b2.add_edge(0, 0)
        assert b2.build().m == 0

    def test_duplicates_collapsed_at_build(self):
        b = GraphBuilder()
        b.add_edges([(0, 1)] * 5)
        assert b.edge_count == 5
        assert b.build().m == 1
