"""SCC and condensation tests, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, gnp_digraph, path_graph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.topo import is_acyclic


def to_nx(g: DiGraph) -> nx.DiGraph:
    h = nx.DiGraph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.edges())
    return h


def partitions_equal(comp: np.ndarray, nx_sccs) -> bool:
    ours = {}
    for v, c in enumerate(comp):
        ours.setdefault(int(c), set()).add(v)
    return sorted(map(frozenset, ours.values()), key=sorted) == sorted(
        map(frozenset, nx_sccs), key=sorted
    )


class TestTarjan:
    def test_path_graph_all_trivial(self):
        comp = strongly_connected_components(path_graph(5))
        assert len(set(comp.tolist())) == 5

    def test_cycle_single_component(self):
        comp = strongly_connected_components(cycle_graph(6))
        assert len(set(comp.tolist())) == 1

    def test_two_cycle_with_tail(self):
        g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
        comp = strongly_connected_components(g)
        assert comp[0] == comp[1] != comp[2]

    def test_empty_graph(self):
        comp = strongly_connected_components(DiGraph(0))
        assert len(comp) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        g = gnp_digraph(30, 0.08, seed=seed)
        comp = strongly_connected_components(g)
        assert partitions_equal(comp, nx.strongly_connected_components(to_nx(g)))

    def test_deep_path_no_recursion_error(self):
        # 50k-vertex path would blow Python's recursion limit if recursive.
        n = 50_000
        g = path_graph(n)
        comp = strongly_connected_components(g)
        assert len(set(comp.tolist())) == n

    def test_reverse_topological_numbering(self):
        # Tarjan emits sink components first: every DAG edge (a, b) must
        # have comp id of a greater than comp id of b.
        g = gnp_digraph(25, 0.1, seed=11)
        cond = condensation(g)
        for a, b in cond.dag.edges():
            assert a > b


class TestCondensation:
    def test_dag_is_acyclic(self):
        for seed in range(5):
            g = gnp_digraph(25, 0.12, seed=seed)
            assert is_acyclic(condensation(g).dag)

    def test_sizes_sum_to_n(self):
        g = gnp_digraph(30, 0.1, seed=3)
        cond = condensation(g)
        assert int(cond.component_sizes.sum()) == g.n

    def test_members_partition(self):
        g = gnp_digraph(20, 0.15, seed=5)
        cond = condensation(g)
        seen = set()
        for c in range(cond.num_components):
            members = set(cond.members(c).tolist())
            assert not (members & seen)
            seen |= members
        assert seen == set(range(g.n))

    def test_edge_correspondence(self):
        # DAG has edge (c1, c2) iff some original edge crosses the SCCs.
        g = gnp_digraph(25, 0.1, seed=7)
        cond = condensation(g)
        expected = set()
        for u, v in g.edges():
            cu, cv = int(cond.component_of[u]), int(cond.component_of[v])
            if cu != cv:
                expected.add((cu, cv))
        assert set(cond.dag.edges()) == expected

    def test_matches_networkx_condensation(self):
        g = gnp_digraph(30, 0.1, seed=9)
        ours = condensation(g)
        theirs = nx.condensation(to_nx(g))
        assert ours.dag.n == theirs.number_of_nodes()
        assert ours.dag.m == theirs.number_of_edges()

    def test_is_trivial(self):
        g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
        cond = condensation(g)
        c_cycle = int(cond.component_of[0])
        c_tail = int(cond.component_of[2])
        assert not cond.is_trivial(c_cycle)
        assert cond.is_trivial(c_tail)

    def test_paper_table2_style_counts(self):
        # A graph of two 3-cycles bridged by an edge condenses to 2 vertices.
        g = DiGraph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])
        cond = condensation(g)
        assert cond.dag.n == 2 and cond.dag.m == 1
