"""Generator shape tests, including the reconstructed paper example."""

import numpy as np
import pytest

from repro.graph.generators import (
    PAPER_EXAMPLE_LABELS,
    balanced_tree,
    complete_digraph,
    cycle_graph,
    gnp_digraph,
    layered_dag,
    paper_example_graph,
    path_graph,
    power_law_digraph,
    random_dag,
    random_tree,
    star_graph,
)
from repro.graph.topo import is_acyclic
from repro.graph.traversal import bfs_distances


class TestBasicShapes:
    def test_path(self):
        g = path_graph(5)
        assert g.n == 5 and g.m == 4

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.m == 4
        with pytest.raises(ValueError):
            cycle_graph(1)

    def test_complete(self):
        g = complete_digraph(4)
        assert g.m == 12

    def test_star_directions(self):
        out = star_graph(5)
        assert out.out_degree(0) == 4 and out.in_degree(0) == 0
        inw = star_graph(5, inward=True)
        assert inw.in_degree(0) == 4 and inw.out_degree(0) == 0
        with pytest.raises(ValueError):
            star_graph(0)

    def test_random_tree_is_tree(self):
        g = random_tree(20, seed=1)
        assert g.m == 19
        assert is_acyclic(g)
        assert all(g.in_degree(v) == 1 for v in range(1, 20))

    def test_balanced_tree(self):
        g = balanced_tree(2, 3)
        assert g.n == 15 and g.m == 14
        with pytest.raises(ValueError):
            balanced_tree(0, 2)


class TestRandomFamilies:
    def test_gnp_bounds(self):
        g = gnp_digraph(20, 0.5, seed=0)
        assert 0 < g.m <= 20 * 19
        assert gnp_digraph(0, 0.5).n == 0
        with pytest.raises(ValueError):
            gnp_digraph(5, 1.5)

    def test_gnp_deterministic(self):
        a, b = gnp_digraph(15, 0.2, seed=3), gnp_digraph(15, 0.2, seed=3)
        assert a == b

    def test_random_dag_acyclic_and_sized(self):
        g = random_dag(20, 50, seed=1)
        assert g.m == 50
        assert is_acyclic(g)

    def test_random_dag_dense_request(self):
        g = random_dag(8, 1000, seed=2)
        assert g.m == 8 * 7 // 2  # clamped to the maximum
        assert is_acyclic(g)

    def test_layered_dag(self):
        g = layered_dag(5, 4, p=0.4, seed=0)
        assert g.n == 20
        assert is_acyclic(g)
        # connectivity guarantee: last layer reachable from first
        dist = bfs_distances(g, 0)
        assert dist[16:].max() >= 4 or (dist[16:] >= 0).any()

    def test_power_law_has_skew(self):
        g = power_law_digraph(300, 2000, seed=1)
        degs = np.sort(g.degrees())[::-1]
        assert degs[0] > 4 * max(1, np.median(degs))


class TestPaperExample:
    def test_exact_edge_set(self):
        g = paper_example_graph()
        expect = {("a", "b"), ("c", "b"), ("b", "d"), ("d", "e"), ("d", "f"),
                  ("e", "g"), ("g", "h"), ("g", "i"), ("i", "j")}
        got = {(g.vertex_label(u), g.vertex_label(v)) for u, v in g.edges()}
        assert got == expect

    def test_labels_in_order(self):
        g = paper_example_graph()
        assert tuple(g.vertex_label(i) for i in range(10)) == PAPER_EXAMPLE_LABELS

    def test_structural_claims(self):
        g = paper_example_graph()
        a, j = g.vertex_id("a"), g.vertex_id("j")
        assert g.in_degree(a) == 0  # Example 4: inNei_i(a) is empty
        assert g.in_degree(j) == 1  # j's only in-neighbor is i
        # Example 2: j is at distance >= 4 from d
        d = g.vertex_id("d")
        assert bfs_distances(g, d)[j] == 4
