"""Graph serialization round-trip tests."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestEdgeList:
    def test_round_trip(self, tmp_path):
        g = gnp_digraph(20, 0.15, seed=1)
        path = tmp_path / "g.el"
        write_edge_list(g, path)
        h = read_edge_list(path, n=g.n)
        assert g == h

    def test_header_comment_ignored(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("# comment\n% other comment\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n == 3 and g.m == 2

    def test_forced_vertex_count(self, tmp_path):
        path = tmp_path / "g.el"
        path.write_text("0 1\n")
        assert read_edge_list(path, n=10).n == 10

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.el"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_no_header_mode(self, tmp_path):
        g = DiGraph(3, [(0, 1)])
        path = tmp_path / "g.el"
        write_edge_list(g, path, header=False)
        assert not path.read_text().startswith("#")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.el"
        path.write_text("")
        g = read_edge_list(path)
        assert g.n == 0 and g.m == 0


class TestNpz:
    def test_round_trip(self, tmp_path):
        g = gnp_digraph(25, 0.12, seed=2)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert g == h
        assert h.in_lists() == g.in_lists()

    def test_empty_graph(self, tmp_path):
        g = DiGraph(4)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.n == 4 and h.m == 0
