"""Topological ordering tests."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, path_graph, random_dag
from repro.graph.topo import CycleError, is_acyclic, topological_order


class TestTopologicalOrder:
    def test_path(self):
        assert topological_order(path_graph(4)).tolist() == [0, 1, 2, 3]

    def test_every_edge_respects_order(self):
        g = random_dag(30, 70, seed=2)
        order = topological_order(g)
        position = {int(v): i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert position[u] < position[v]

    def test_all_vertices_present(self):
        g = random_dag(15, 25, seed=4)
        assert sorted(topological_order(g).tolist()) == list(range(15))

    def test_deterministic_tie_break(self):
        g = DiGraph(3)  # no edges: pure id order
        assert topological_order(g).tolist() == [0, 1, 2]

    def test_cycle_raises(self):
        with pytest.raises(CycleError, match="not acyclic"):
            topological_order(cycle_graph(4))

    def test_partial_cycle_raises(self):
        g = DiGraph(4, [(0, 1), (1, 2), (2, 1), (2, 3)])
        with pytest.raises(CycleError):
            topological_order(g)

    def test_empty_graph(self):
        assert topological_order(DiGraph(0)).tolist() == []


class TestIsAcyclic:
    def test_dag(self):
        assert is_acyclic(random_dag(10, 15, seed=0))

    def test_cycle(self):
        assert not is_acyclic(cycle_graph(3))

    def test_self_loop_graph(self):
        g = DiGraph(2, [(0, 0), (0, 1)], allow_self_loops=True)
        assert not is_acyclic(g)
