"""networkx interop tests."""

import networkx as nx
import pytest

from repro.graph.generators import gnp_digraph, paper_example_graph
from repro.graph.nx import from_networkx, to_networkx
from repro.graph.traversal import reaches_within_bfs


class TestFromNetworkx:
    def test_labeled_round_trip(self):
        nxg = nx.DiGraph([("a", "b"), ("b", "c"), ("a", "c")])
        g = from_networkx(nxg)
        assert g.n == 3 and g.m == 3
        assert g.vertex_id("a") == 0
        assert g.has_edge(g.vertex_id("a"), g.vertex_id("c"))

    def test_isolated_nodes_kept(self):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(["x", "y"])
        nxg.add_edge("x", "y")
        nxg.add_node("z")
        g = from_networkx(nxg)
        assert g.n == 3 and g.m == 1

    def test_undirected_rejected(self):
        with pytest.raises(ValueError, match="directed"):
            from_networkx(nx.Graph([(0, 1)]))

    def test_self_loops_dropped(self):
        nxg = nx.DiGraph([(0, 0), (0, 1)])
        assert from_networkx(nxg).m == 1

    def test_reachability_preserved(self):
        nxg = nx.gnp_random_graph(25, 0.1, seed=3, directed=True)
        g = from_networkx(nxg)
        for s in range(25):
            for t in range(25):
                expected = nx.has_path(nxg, s, t)
                assert reaches_within_bfs(g, g.vertex_id(s), g.vertex_id(t), None) == expected


class TestToNetworkx:
    def test_unlabeled(self):
        g = gnp_digraph(15, 0.2, seed=1)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == g.n
        assert nxg.number_of_edges() == g.m

    def test_labeled_keeps_labels(self):
        g = paper_example_graph()
        nxg = to_networkx(g)
        assert set(nxg.nodes()) == set("abcdefghij")
        assert nxg.has_edge("b", "d")

    def test_round_trip(self):
        g = gnp_digraph(20, 0.15, seed=2)
        back = from_networkx(to_networkx(g))
        assert sorted(g.edges()) == sorted(
            (back.vertex_id(u), back.vertex_id(v)) for u, v in back.edges()
        ) or g.m == back.m  # ids may permute through labels; sizes must match
        assert g.n == back.n and g.m == back.m
