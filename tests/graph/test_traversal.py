"""Unit and cross-validation tests for the traversal kernels."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import cycle_graph, gnp_digraph, path_graph
from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    bfs_distances_scalar,
    bidirectional_reaches_within,
    bounded_neighborhood,
    dfs_postorder,
    eccentricity,
    gather_neighbors,
    khop_neighbors,
    reachable_set,
    reaches_within_bfs,
)


def to_nx(g: DiGraph) -> nx.DiGraph:
    h = nx.DiGraph()
    h.add_nodes_from(range(g.n))
    h.add_edges_from(g.edges())
    return h


class TestGatherNeighbors:
    def test_empty_frontier(self):
        g = path_graph(4)
        out = gather_neighbors(g.out_indptr, g.out_indices, np.array([], dtype=np.int64))
        assert len(out) == 0

    def test_multi_vertex_frontier(self):
        g = DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        out = gather_neighbors(g.out_indptr, g.out_indices, np.array([0, 1]))
        assert sorted(out.tolist()) == [1, 2, 3]

    def test_vertices_without_neighbors(self):
        g = DiGraph(3, [(0, 1)])
        out = gather_neighbors(g.out_indptr, g.out_indices, np.array([1, 2]))
        assert len(out) == 0


class TestBfsDistances:
    def test_path_graph(self):
        g = path_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_distances(g, 4).tolist() == [UNREACHED] * 4 + [0]

    def test_k_truncation(self):
        g = path_graph(5)
        assert bfs_distances(g, 0, k=2).tolist() == [0, 1, 2, UNREACHED, UNREACHED]

    def test_k_zero(self):
        g = path_graph(3)
        d = bfs_distances(g, 1, k=0)
        assert d[1] == 0 and d[0] == UNREACHED and d[2] == UNREACHED

    def test_in_direction(self):
        g = path_graph(4)
        d = bfs_distances(g, 3, direction="in")
        assert d.tolist() == [3, 2, 1, 0]

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            bfs_distances(path_graph(3), 5)

    def test_negative_k(self):
        with pytest.raises(ValueError):
            bfs_distances(path_graph(3), 0, k=-1)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            bfs_distances(path_graph(3), 0, direction="sideways")

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        g = gnp_digraph(25, 0.1, seed=seed)
        truth = nx.single_source_shortest_path_length(to_nx(g), 0)
        dist = bfs_distances(g, 0)
        for v in range(g.n):
            if v in truth:
                assert dist[v] == truth[v]
            else:
                assert dist[v] == UNREACHED

    @pytest.mark.parametrize("seed", range(5))
    def test_scalar_matches_vectorized(self, seed):
        g = gnp_digraph(20, 0.15, seed=seed)
        for k in (None, 0, 1, 2, 4):
            dense = bfs_distances(g, 0, k=k)
            sparse = bfs_distances_scalar(g, 0, k=k)
            expected = {v: int(dense[v]) for v in range(g.n) if dense[v] != UNREACHED}
            assert sparse == expected


class TestReachesWithin:
    def test_self_reachable_any_k(self):
        g = path_graph(3)
        assert reaches_within_bfs(g, 1, 1, 0)
        assert reaches_within_bfs(g, 1, 1, None)

    def test_k_zero_distinct(self):
        g = path_graph(3)
        assert not reaches_within_bfs(g, 0, 1, 0)

    def test_exact_boundary(self):
        g = path_graph(5)
        assert reaches_within_bfs(g, 0, 3, 3)
        assert not reaches_within_bfs(g, 0, 3, 2)

    def test_unbounded(self):
        g = path_graph(5)
        assert reaches_within_bfs(g, 0, 4, None)
        assert not reaches_within_bfs(g, 4, 0, None)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            reaches_within_bfs(path_graph(3), 0, 9, 2)

    def test_cycle_wraps(self):
        g = cycle_graph(4)
        assert reaches_within_bfs(g, 2, 1, 3)
        assert not reaches_within_bfs(g, 2, 1, 2)


class TestBidirectional:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_unidirectional(self, seed):
        rng = np.random.default_rng(seed)
        g = gnp_digraph(22, 0.12, seed=seed)
        for _ in range(60):
            s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
            k = [0, 1, 2, 3, 5, None][int(rng.integers(0, 6))]
            assert bidirectional_reaches_within(g, s, t, k) == reaches_within_bfs(
                g, s, t, k
            ), (s, t, k)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bidirectional_reaches_within(path_graph(3), -1, 0, 2)


class TestNeighborhoods:
    def test_bounded_neighborhood_out(self):
        g = path_graph(5)
        assert bounded_neighborhood(g, 0, 2) == {0: 0, 1: 1, 2: 2}

    def test_bounded_neighborhood_in(self):
        g = path_graph(5)
        assert bounded_neighborhood(g, 4, 2, direction="in") == {4: 0, 3: 1, 2: 2}

    def test_khop_excludes_self(self):
        g = path_graph(4)
        pairs = dict(khop_neighbors(g, 0, 2))
        assert 0 not in pairs
        assert pairs == {1: 1, 2: 2}


class TestReachableSet:
    def test_forward(self):
        g = DiGraph(4, [(0, 1), (1, 2)])
        assert reachable_set(g, 0) == {0, 1, 2}

    def test_backward(self):
        g = DiGraph(4, [(0, 1), (1, 2)])
        assert reachable_set(g, 2, direction="in") == {0, 1, 2}


class TestDfsPostorder:
    def test_covers_all_vertices_once(self):
        g = gnp_digraph(20, 0.1, seed=4)
        post = dfs_postorder(g)
        assert sorted(post.tolist()) == list(range(20))

    def test_children_before_parents_on_tree(self):
        g = DiGraph(3, [(0, 1), (0, 2)])
        post = list(dfs_postorder(g))
        assert post.index(1) < post.index(0)
        assert post.index(2) < post.index(0)

    def test_respects_priority_order(self):
        g = DiGraph(3, [(0, 1), (0, 2)])
        # priority reversing ids makes 2 explored before 1
        post = list(dfs_postorder(g, order=np.array([2, 1, 0])))
        assert post.index(2) < post.index(1)


class TestEccentricity:
    def test_path(self):
        g = path_graph(6)
        assert eccentricity(g, 0) == 5
        assert eccentricity(g, 5) == 0
        assert eccentricity(g, 5, direction="in") == 5


class TestReachesWithinSmall:
    def test_k_zero_and_self(self):
        from repro.graph.traversal import reaches_within_small

        g = path_graph(4)
        assert reaches_within_small(g, 2, 2, 0)
        assert not reaches_within_small(g, 0, 1, 0)

    def test_exact_hop_boundaries(self):
        from repro.graph.traversal import reaches_within_small

        g = path_graph(5)
        assert reaches_within_small(g, 0, 1, 1)
        assert not reaches_within_small(g, 0, 2, 1)
        assert reaches_within_small(g, 0, 2, 2)
        assert not reaches_within_small(g, 0, 3, 2)
        assert reaches_within_small(g, 0, 3, 3)
        assert not reaches_within_small(g, 0, 4, 3)

    def test_no_neighbors(self):
        from repro.graph.traversal import reaches_within_small

        g = DiGraph(3, [(0, 1)])
        assert not reaches_within_small(g, 2, 0, 3)
        assert not reaches_within_small(g, 1, 2, 3)

    def test_hub_graph_stays_cheap_and_correct(self):
        from repro.graph.traversal import reaches_within_small
        from repro.graph.generators import star_graph

        g = star_graph(500)
        # spoke -> spoke via the hub would need hub->spoke: out-star only
        assert reaches_within_small(g, 0, 499, 1)
        assert not reaches_within_small(g, 1, 2, 3)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_bfs(self, seed):
        from repro.graph.traversal import reaches_within_small

        rng = np.random.default_rng(seed)
        g = gnp_digraph(30, 0.15, seed=40 + seed)
        for _ in range(120):
            s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
            k = int(rng.integers(0, 4))
            assert reaches_within_small(g, s, t, k) == reaches_within_bfs(
                g, s, t, k
            ), (s, t, k)


class TestBfsDistancesBlocked:
    """The bit-parallel multi-source kernel vs per-source ground truth."""

    @pytest.mark.parametrize("k", [0, 1, 3, None])
    @pytest.mark.parametrize("direction", ["out", "in"])
    def test_matches_per_source(self, k, direction):
        from repro.graph.traversal import bfs_distances_blocked

        g = gnp_digraph(120, 0.04, seed=21)
        sources = np.arange(0, g.n, 3, dtype=np.int64)
        src, dst, dist = bfs_distances_blocked(g, sources, k=k, direction=direction)
        got = dict(zip(zip(src.tolist(), dst.tolist()), dist.tolist()))
        assert len(got) == len(src)  # no duplicate (src, dst) pairs
        want = {}
        for u in sources.tolist():
            d = bfs_distances(g, u, k=k, direction=direction)
            for v in np.flatnonzero(d != UNREACHED).tolist():
                if v != u:
                    want[(u, v)] = int(d[v])
        assert got == want

    def test_more_than_64_sources(self):
        from repro.graph.traversal import bfs_distances_blocked

        g = gnp_digraph(150, 0.03, seed=22)
        sources = np.arange(g.n, dtype=np.int64)  # 3 blocks
        src, dst, dist = bfs_distances_blocked(g, sources, k=2)
        for u, v, d in zip(src.tolist()[:500], dst.tolist()[:500], dist.tolist()[:500]):
            assert int(bfs_distances(g, u, k=2)[v]) == d

    def test_emit_mask_filters_reports_not_traversal(self):
        from repro.graph.traversal import bfs_distances_blocked

        g = path_graph(5)  # 0 -> 1 -> 2 -> 3 -> 4
        emit = np.zeros(g.n, dtype=bool)
        emit[4] = True  # only the far endpoint is reportable
        src, dst, dist = bfs_distances_blocked(
            g, np.array([0], dtype=np.int64), emit=emit
        )
        # The walk crossed 1..3 (not emitted) to reach 4 at distance 4.
        assert list(zip(src.tolist(), dst.tolist(), dist.tolist())) == [(0, 4, 4)]

    def test_source_never_reports_itself(self):
        from repro.graph.traversal import bfs_distances_blocked

        g = cycle_graph(6)  # every vertex reaches itself around the cycle
        src, dst, _ = bfs_distances_blocked(g, np.arange(6, dtype=np.int64))
        assert not np.any(src == dst)

    def test_empty_sources(self):
        from repro.graph.traversal import bfs_distances_blocked

        g = path_graph(4)
        src, dst, dist = bfs_distances_blocked(g, np.empty(0, dtype=np.int64))
        assert len(src) == len(dst) == len(dist) == 0

    def test_validation(self):
        from repro.graph.traversal import bfs_distances_blocked

        g = path_graph(4)
        with pytest.raises(ValueError):
            bfs_distances_blocked(g, np.array([9]))
        with pytest.raises(ValueError):
            bfs_distances_blocked(g, np.array([0]), k=-1)
        with pytest.raises(ValueError):
            bfs_distances_blocked(g, np.array([0]), emit=np.zeros(2, dtype=bool))

    def test_duplicate_sources_collapsed(self):
        from repro.graph.traversal import bfs_distances_blocked

        g = path_graph(5)
        src, dst, dist = bfs_distances_blocked(
            g, np.array([1, 1, 1, 3], dtype=np.int64), k=2
        )
        triples = sorted(zip(src.tolist(), dst.tolist(), dist.tolist()))
        assert triples == [(1, 2, 1), (1, 3, 2), (3, 4, 1)]
