"""Graph statistics tests (the Table-2 machinery)."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    complete_digraph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.stats import graph_h_index, shortest_path_stats, summarize


class TestShortestPathStats:
    def test_path_graph(self):
        d, mu = shortest_path_stats(path_graph(9))
        assert d == 8
        # distances 1..8 with multiplicities 8..1; median is 3
        assert mu == 3

    def test_cycle(self):
        d, mu = shortest_path_stats(cycle_graph(6))
        assert d == 5
        assert mu == 3

    def test_complete_graph(self):
        d, mu = shortest_path_stats(complete_digraph(5))
        assert d == 1 and mu == 1

    def test_edgeless(self):
        assert shortest_path_stats(DiGraph(5)) == (0, 0)

    def test_empty(self):
        assert shortest_path_stats(DiGraph(0)) == (0, 0)

    def test_sampling_is_subset_estimate(self):
        g = path_graph(50)
        d_full, _ = shortest_path_stats(g)
        d_sample, _ = shortest_path_stats(
            g, sample_size=10, rng=np.random.default_rng(0)
        )
        assert d_sample <= d_full

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            shortest_path_stats(path_graph(5), sample_size=0)


class TestHIndex:
    def test_star(self):
        # hub has degree n-1, spokes degree 1 -> h-index 1 for n > 2
        assert graph_h_index(star_graph(10)) == 1

    def test_complete(self):
        # every vertex has degree 2(n-1) >= n: h-index = n
        assert graph_h_index(complete_digraph(5)) == 5

    def test_empty(self):
        assert graph_h_index(DiGraph(3)) == 0


class TestSummarize:
    def test_path_summary(self):
        s = summarize(path_graph(6))
        assert s.n == 6 and s.m == 5
        assert s.n_dag == 6 and s.m_dag == 5
        assert s.deg_max == 2
        assert s.diameter == 5

    def test_cycle_condenses(self):
        s = summarize(cycle_graph(5))
        assert s.n_dag == 1 and s.m_dag == 0

    def test_as_row_keys(self):
        s = summarize(path_graph(3))
        row = s.as_row()
        assert set(row) == {"|V|", "|E|", "|V_DAG|", "|E_DAG|", "Degmax", "d", "mu"}

    def test_degmax_union_semantics(self):
        # vertex 0 with reciprocal edge to 1 and edge to 2: Deg = 2, not 3
        g = DiGraph(3, [(0, 1), (1, 0), (0, 2)])
        assert summarize(g).deg_max == 2
