"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.n == 0 and g.m == 0

    def test_vertices_without_edges(self):
        g = DiGraph(5)
        assert g.n == 5 and g.m == 0
        assert list(g.out_neighbors(3)) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DiGraph(-1)

    def test_basic_edges(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        assert g.m == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(1, 0)

    def test_duplicate_edges_collapsed(self):
        g = DiGraph(3, [(0, 1), (0, 1), (0, 1)])
        assert g.m == 1

    def test_self_loops_dropped_by_default(self):
        g = DiGraph(2, [(0, 0), (0, 1)])
        assert g.m == 1
        assert not g.has_edge(0, 0)

    def test_self_loops_kept_when_allowed(self):
        g = DiGraph(2, [(0, 0), (0, 1)], allow_self_loops=True)
        assert g.m == 2
        assert g.has_edge(0, 0)

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DiGraph(2, [(0, 5)])
        with pytest.raises(ValueError, match="out of range"):
            DiGraph(2, [(-1, 0)])

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError):
            DiGraph(3, [(0, 1, 2)])  # type: ignore[list-item]

    def test_neighbors_sorted(self):
        g = DiGraph(4, [(0, 3), (0, 1), (0, 2)])
        assert list(g.out_neighbors(0)) == [1, 2, 3]

    def test_from_csr_round_trip(self):
        g = DiGraph(4, [(0, 1), (0, 2), (2, 3)])
        h = DiGraph.from_csr(g.out_indptr, g.out_indices)
        assert g == h


class TestLabels:
    def test_from_labeled(self):
        g = DiGraph.from_labeled([("x", "y"), ("y", "z")])
        assert g.n == 3 and g.m == 2
        assert g.vertex_id("x") == 0
        assert g.vertex_label(2) == "z"
        assert g.has_labels

    def test_unlabeled_graph_rejects_label_lookup(self):
        g = DiGraph(2, [(0, 1)])
        assert not g.has_labels
        with pytest.raises(ValueError, match="labels"):
            g.vertex_id("x")
        with pytest.raises(ValueError, match="labels"):
            g.vertex_label(0)


class TestDegrees:
    def test_in_out_degrees(self):
        g = DiGraph(4, [(0, 1), (0, 2), (1, 2), (3, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 3
        assert g.in_degree(0) == 0

    def test_degree_union_semantics(self):
        # reciprocal edge: neighbor counted once in Deg (paper Table 1)
        g = DiGraph(2, [(0, 1), (1, 0)])
        assert g.degree(0) == 1
        assert g.degrees()[0] == 2  # cheap in+out version counts both

    def test_degree_vectors(self):
        g = DiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert list(g.out_degrees()) == [2, 1, 0]
        assert list(g.in_degrees()) == [0, 1, 2]
        assert list(g.degrees()) == [2, 2, 2]


class TestViews:
    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        g = DiGraph(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_edge_array_matches_edges(self):
        g = DiGraph(5, [(0, 4), (2, 1), (3, 3), (4, 0)])
        arr = g.edge_array()
        assert sorted(map(tuple, arr.tolist())) == sorted(g.edges())

    def test_reverse(self):
        g = DiGraph(3, [(0, 1), (1, 2)])
        r = g.reverse()
        assert r.has_edge(1, 0) and r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        assert r.m == g.m

    def test_reverse_of_reverse_is_original(self):
        g = DiGraph(4, [(0, 1), (2, 3), (1, 3)])
        assert g.reverse().reverse() == g

    def test_subgraph(self):
        g = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub, mapping = g.subgraph([1, 2, 3])
        assert sub.n == 2 + 1
        assert sub.m == 2  # 1->2 and 2->3 survive
        assert list(mapping) == [1, 2, 3]

    def test_subgraph_out_of_range(self):
        g = DiGraph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.subgraph([5])

    def test_undirected_edges(self):
        g = DiGraph(3, [(0, 1), (1, 0), (1, 2)])
        assert g.undirected_edges() == {frozenset((0, 1)), frozenset((1, 2))}

    def test_to_dict(self):
        g = DiGraph(3, [(0, 1), (0, 2)])
        assert g.to_dict() == {0: [1, 2], 1: [], 2: []}

    def test_adjacency_lists_cached_and_correct(self):
        g = DiGraph(4, [(0, 1), (0, 3), (2, 1)])
        out = g.out_lists()
        assert out == [[1, 3], [], [1], []]
        assert g.out_lists() is out  # cached
        assert g.in_lists() == [[], [0, 2], [], [0]]
        assert all(isinstance(v, int) for row in out for v in row)


class TestDunder:
    def test_len(self):
        assert len(DiGraph(7)) == 7

    def test_equality_and_hash(self):
        a = DiGraph(3, [(0, 1), (1, 2)])
        b = DiGraph(3, [(1, 2), (0, 1)])
        c = DiGraph(3, [(0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_storage_bytes_positive(self):
        g = DiGraph(10, [(i, i + 1) for i in range(9)])
        assert g.storage_bytes() > 0


class TestFromCsrValidated:
    """from_csr with both directions: install-fast, but validate invariants."""

    def test_dual_direction_round_trip(self):
        g = DiGraph(5, [(0, 1), (0, 4), (2, 1), (3, 2)])
        h = DiGraph.from_csr(
            g.out_indptr,
            g.out_indices,
            in_indptr=g.in_indptr,
            in_indices=g.in_indices,
        )
        assert g == h
        assert h.m == g.m
        assert [int(v) for v in h.in_neighbors(1)] == [0, 2]

    def test_partial_direction_pair_rejected(self):
        g = DiGraph(3, [(0, 1)])
        with pytest.raises(ValueError, match="both"):
            DiGraph.from_csr(g.out_indptr, g.out_indices, in_indptr=g.in_indptr)

    def test_bad_indptr_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="indptr"):
            DiGraph.from_csr(
                np.array([0, 2, 1]),  # non-monotone
                np.array([1, 0], dtype=np.int32),
                in_indptr=np.array([0, 1, 2]),
                in_indices=np.array([1, 0], dtype=np.int32),
            )
        with pytest.raises(ValueError, match="indptr"):
            DiGraph.from_csr(
                np.array([0, 1, 3]),  # ends past the index array
                np.array([1, 0], dtype=np.int32),
                in_indptr=np.array([0, 1, 2]),
                in_indices=np.array([1, 0], dtype=np.int32),
            )

    def test_out_of_range_indices_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="range"):
            DiGraph.from_csr(
                np.array([0, 1, 2]),
                np.array([5, 0], dtype=np.int32),
                in_indptr=np.array([0, 1, 2]),
                in_indices=np.array([1, 0], dtype=np.int32),
            )

    def test_unsorted_row_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="ascending"):
            DiGraph.from_csr(
                np.array([0, 2, 2, 2]),
                np.array([2, 1], dtype=np.int32),  # descending within row 0
                in_indptr=np.array([0, 0, 1, 2]),
                in_indices=np.array([0, 0], dtype=np.int32),
            )

    def test_mismatched_edge_counts_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="edge counts"):
            DiGraph.from_csr(
                np.array([0, 1, 1]),
                np.array([1], dtype=np.int32),
                in_indptr=np.array([0, 0, 0]),
                in_indices=np.array([], dtype=np.int32),
            )

    def test_non_transpose_directions_rejected(self):
        import numpy as np

        a = DiGraph(4, [(0, 1), (1, 2), (2, 3)])
        b = DiGraph(4, [(3, 0), (3, 1), (3, 2)])  # same n and m
        with pytest.raises(ValueError, match="transpose"):
            DiGraph.from_csr(
                a.out_indptr,
                a.out_indices,
                in_indptr=b.in_indptr,
                in_indices=b.in_indices,
            )
