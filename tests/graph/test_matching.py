"""Hopcroft–Karp maximum-matching tests, validated by brute force."""

from itertools import permutations

import numpy as np
import pytest

from repro.graph.matching import hopcroft_karp


def brute_force_max_matching(adjacency: list[list[int]], n_right: int) -> int:
    """Exhaustive maximum matching size (small instances only)."""
    n_left = len(adjacency)
    best = 0
    # Try all injective assignments of a subset of left vertices.
    sets = [set(a) for a in adjacency]

    def search(u: int, used: set[int], size: int) -> None:
        nonlocal best
        best = max(best, size)
        if u == n_left:
            return
        search(u + 1, used, size)
        for v in sets[u]:
            if v not in used:
                used.add(v)
                search(u + 1, used, size + 1)
                used.remove(v)

    search(0, set(), 0)
    return best


def check_valid(adjacency, match_left, match_right):
    for u, v in enumerate(match_left):
        if v != -1:
            assert v in adjacency[u]
            assert match_right[v] == u
    matched_rights = [v for v in match_left if v != -1]
    assert len(matched_rights) == len(set(matched_rights))


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adjacency = [[0], [1], [2]]
        ml, mr, size = hopcroft_karp(adjacency, 3, 3)
        assert size == 3
        check_valid(adjacency, ml, mr)

    def test_no_edges(self):
        ml, mr, size = hopcroft_karp([[], []], 2, 2)
        assert size == 0
        assert ml == [-1, -1]

    def test_contested_vertex(self):
        # both left vertices want right 0; only one wins
        adjacency = [[0], [0]]
        _, _, size = hopcroft_karp(adjacency, 2, 1)
        assert size == 1

    def test_augmenting_path_needed(self):
        # classic case requiring an augmenting flip
        adjacency = [[0, 1], [0]]
        ml, mr, size = hopcroft_karp(adjacency, 2, 2)
        assert size == 2
        check_valid(adjacency, ml, mr)

    def test_wrong_row_count(self):
        with pytest.raises(ValueError):
            hopcroft_karp([[0]], 2, 1)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n_left = int(rng.integers(1, 8))
        n_right = int(rng.integers(1, 8))
        adjacency = [
            sorted(set(int(v) for v in rng.integers(0, n_right, size=rng.integers(0, 5))))
            for _ in range(n_left)
        ]
        ml, mr, size = hopcroft_karp(adjacency, n_left, n_right)
        check_valid(adjacency, ml, mr)
        assert size == brute_force_max_matching(adjacency, n_right)

    def test_long_chain(self):
        # path-shaped bipartite graph: matching = ceil(n/2)... here exact
        n = 50
        adjacency = [[i, i + 1] if i + 1 < n else [i] for i in range(n)]
        _, _, size = hopcroft_karp(adjacency, n, n)
        assert size == n
