"""Run the doctest examples embedded in the public API docstrings.

Keeps every ``>>>`` example in the documentation honest — if an API
signature or behavior changes, the stale example fails here.
"""

import doctest

import pytest

import repro.baselines.pll
import repro.baselines.pwah
import repro.baselines.transitive_closure
import repro.bench.report
import repro.core.batch
import repro.bitsets.bitset
import repro.bitsets.packed
import repro.bitsets.wah
import repro.core.hkreach
import repro.core.index_graph
import repro.core.kreach
import repro.core.rowstore
import repro.core.serve
import repro.graph.builder
import repro.graph.digraph
import repro.native

MODULES = [
    repro.graph.digraph,
    repro.graph.builder,
    repro.bitsets.bitset,
    repro.bitsets.wah,
    repro.bitsets.packed,
    repro.core.index_graph,
    repro.core.kreach,
    repro.core.batch,
    repro.core.hkreach,
    repro.core.rowstore,
    repro.core.serve,
    repro.native,
    repro.baselines.transitive_closure,
    repro.baselines.pwah,
    repro.baselines.pll,
    repro.bench.report,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(
        module, optionflags=doctest.NORMALIZE_WHITESPACE, verbose=False
    )
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0 or module in (repro.bench.report,), (
        f"expected at least one doctest in {module.__name__}"
    )
