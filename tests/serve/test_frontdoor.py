"""Async front-door suite.

Pins the batching front end's contract: many concurrent clients get
bit-exact verdicts through micro-batched pool queries, the LRU cache
serves repeats and invalidates on churn, admission control sheds load
instead of queueing without bound, the HTTP surface exposes
``/healthz`` + ``/metrics``, and a worker SIGKILL injected through the
faults registry never produces a wrong or dropped verdict.
"""

import asyncio

import numpy as np
import pytest

from repro import faults
from repro.core.kreach import KReachIndex
from repro.core.partition import partition_kreach
from repro.core.serialize import save_mmap, save_sharded
from repro.core.serve import ThreadQueryServer
from repro.core.sharded import ShardedQueryServer
from repro.graph.generators import gnp_digraph
from repro.serve import FrontDoor, FrontDoorOverloaded, http_request
from repro.workloads import random_pairs


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(80, 0.05, seed=21)


@pytest.fixture(scope="module")
def reference(graph):
    return KReachIndex(graph, 6).prepare_batch()


@pytest.fixture(scope="module")
def manifest(graph, tmp_path_factory):
    directory = tmp_path_factory.mktemp("door") / "m2"
    save_sharded(partition_kreach(graph, 6, 2), directory)
    return directory


class TestBatching:
    def test_64_concurrent_clients_agree(self, graph, reference, manifest):
        async def scenario():
            with ShardedQueryServer(manifest, backend="thread") as server:
                async with FrontDoor(
                    server, window_ms=3, max_batch=2048, cache_pairs=4096
                ) as door:
                    async def client(cid):
                        rng = np.random.default_rng(cid)
                        ok = True
                        for _ in range(4):
                            p = rng.integers(0, graph.n, size=(16, 2))
                            got = await door.query(p.tolist())
                            ok &= got == reference.query_batch(p).tolist()
                        return ok
                    results = await asyncio.gather(
                        *[client(i) for i in range(64)]
                    )
                    metrics = door.metrics()
            return results, metrics

        results, metrics = asyncio.run(scenario())
        assert all(results)
        assert metrics["requests"] == 256
        # Micro-batching actually aggregated: far fewer flushes than
        # requests, and multi-request batches on average.
        assert metrics["batches"] < metrics["requests"]
        assert metrics["mean_batch_pairs"] > 16
        assert metrics["latency_ms"]["p50"] is not None
        assert metrics["latency_ms"]["p99"] >= metrics["latency_ms"]["p50"]

    def test_max_batch_forces_flush(self, graph, reference):
        async def scenario():
            class CountingServer:
                def __init__(self):
                    self.batches = []

                def query_batch(self, pairs, engine=None):
                    self.batches.append(len(pairs))
                    return reference.query_batch(pairs)

                def stats(self):
                    return {"health": "ok"}

            spy = CountingServer()
            async with FrontDoor(
                spy, window_ms=200, max_batch=64, cache_pairs=0
            ) as door:
                pairs = np.stack(
                    [np.arange(64), np.roll(np.arange(64), 1)], axis=1
                )
                waiters = [
                    door.query(pairs[i : i + 16].tolist())
                    for i in range(0, 64, 16)
                ]
                await asyncio.gather(*waiters)
            return spy.batches

        batches = asyncio.run(scenario())
        # 64 pairs hit max_batch=64 well before the 200ms window closes.
        assert sum(batches) == 64 and len(batches) <= 2


class TestCache:
    def test_hot_pairs_served_from_cache(self, graph, reference):
        async def scenario():
            calls = []

            class SpyServer:
                def query_batch(self, pairs, engine=None):
                    calls.append(len(pairs))
                    return reference.query_batch(pairs)

                def stats(self):
                    return {"health": "ok"}

            async with FrontDoor(
                SpyServer(), window_ms=0, cache_pairs=1024
            ) as door:
                hot = [[0, 5], [5, 9], [9, 0]]
                first = await door.query(hot)
                second = await door.query(hot)
                metrics = door.metrics()
                # Churn: invalidation empties the cache and misses again.
                door.invalidate_cache()
                third = await door.query(hot)
            return first, second, third, calls, metrics

        first, second, third, calls, metrics = asyncio.run(scenario())
        assert first == second == third
        assert first == reference.query_batch(np.array([[0, 5], [5, 9], [9, 0]])).tolist()
        assert calls == [3, 3]  # second round never reached the pool
        assert metrics["cache"]["hits"] == 3
        assert metrics["cache"]["hit_rate"] == 0.5

    def test_lru_eviction_bounds_entries(self, graph, reference):
        async def scenario():
            class Srv:
                def query_batch(self, pairs, engine=None):
                    return reference.query_batch(pairs)

                def stats(self):
                    return {"health": "ok"}

            async with FrontDoor(Srv(), window_ms=0, cache_pairs=8) as door:
                for i in range(40):
                    await door.query([[i % graph.n, (i + 1) % graph.n]])
                return door.metrics()["cache"]["entries"]

        assert asyncio.run(scenario()) <= 8


class TestAdmission:
    def test_backlog_sheds_load(self, graph, reference):
        async def scenario():
            started = asyncio.Event()

            class SlowServer:
                def query_batch(self, pairs, engine=None):
                    import time as _time

                    _time.sleep(0.2)
                    return reference.query_batch(pairs)

                def stats(self):
                    return {"health": "ok"}

            door = FrontDoor(
                SlowServer(), window_ms=0, max_batch=4, cache_pairs=0,
                max_backlog=8,
            )
            async with door:
                big = np.stack(
                    [np.arange(8), np.roll(np.arange(8), 1)], axis=1
                ).tolist()
                first = asyncio.ensure_future(door.query(big))
                await asyncio.sleep(0.05)  # batcher now owns 8 pairs
                with pytest.raises(FrontDoorOverloaded):
                    await door.query([[1, 2]])
                verdicts = await first
                rejects = door.admission_rejects
            return verdicts, rejects

        verdicts, rejects = asyncio.run(scenario())
        assert len(verdicts) == 8 and rejects == 1


class TestHttp:
    def test_routes(self, graph, reference, manifest):
        async def scenario():
            with ShardedQueryServer(manifest, backend="thread") as server:
                door = FrontDoor(server, window_ms=1)
                host, port = await door.start_http()
                pairs = [[0, 5], [5, 9]]
                status, body = await http_request(
                    host, port, "POST", "/query", {"pairs": pairs}
                )
                hz = await http_request(host, port, "GET", "/healthz")
                mt = await http_request(host, port, "GET", "/metrics")
                bad = await http_request(
                    host, port, "POST", "/query", {"wrong": 1}
                )
                lost = await http_request(host, port, "GET", "/nope")
                await door.close()
            return status, body, hz, mt, bad, lost

        status, body, hz, mt, bad, lost = asyncio.run(scenario())
        assert status == 200
        assert body["verdicts"] == reference.query_batch(
            np.array([[0, 5], [5, 9]])
        ).tolist()
        assert hz[0] == 200 and hz[1]["status"] == "ok"
        assert mt[0] == 200 and mt[1]["server"]["health"] == "ok"
        assert "worker_restarts" in mt[1]["server"]["shards"][0]
        assert bad[0] == 400
        assert lost[0] == 404

    def test_query_validation_is_400(self, reference):
        async def scenario():
            class Srv:
                def query_batch(self, pairs, engine=None):
                    return reference.query_batch(pairs)

                def stats(self):
                    return {"health": "ok"}

            door = FrontDoor(Srv(), window_ms=0)
            host, port = await door.start_http()
            oob = await http_request(
                host, port, "POST", "/query", {"pairs": [[0, 10**9]]}
            )
            await door.close()
            return oob

        status, body = asyncio.run(scenario())
        assert status == 400 and "error" in body


class TestFaults:
    def test_worker_sigkill_no_wrong_or_dropped_verdicts(
        self, tmp_path, graph, reference, manifest
    ):
        """SIGKILL a shard worker (faults registry) under live traffic."""

        async def scenario():
            with faults.inject(
                "serve.worker_exit", "exit", token=str(tmp_path / "tok")
            ):
                with ShardedQueryServer(
                    manifest,
                    workers=1,
                    backend="process",
                    server_kwargs={"slot_pairs": 256},
                ) as server:
                    async with FrontDoor(
                        server, window_ms=2, cache_pairs=0
                    ) as door:
                        async def client(cid):
                            rng = np.random.default_rng(100 + cid)
                            p = rng.integers(0, graph.n, size=(64, 2))
                            got = await door.query(p.tolist())
                            return got == reference.query_batch(p).tolist()

                        results = await asyncio.gather(
                            *[client(i) for i in range(16)]
                        )
                    restarts = server.stats()["restarts"]
            return results, restarts

        results, restarts = asyncio.run(scenario())
        assert all(results)  # every verdict delivered, none wrong
