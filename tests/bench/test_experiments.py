"""Experiment smoke tests at tiny scale (2 datasets, small workloads)."""

import pytest

from repro.bench.experiments import (
    SuiteConfig,
    run_ablation_case_cost,
    run_ablation_covers,
    run_ablation_general_k,
    run_ablation_online_search,
    run_table2,
    run_table3_4_5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
)
from repro.bench.report import Table


@pytest.fixture(scope="module")
def config():
    return SuiteConfig(
        datasets=("GO", "aMaze"),
        scale=0.03,
        queries=400,
        bfs_queries=60,
        seed=1,
    )


class TestSuiteConfig:
    def test_graph_cached(self, config):
        assert config.graph("GO") is config.graph("GO")

    def test_pairs_shape(self, config):
        pairs = config.pairs("GO")
        assert pairs.shape == (400, 2)

    def test_mu_positive(self, config):
        assert config.mu("GO") >= 2

    def test_builds_cached(self, config):
        builds = config.reachability_builds("GO")
        assert set(builds) == {"n-reach", "PTree", "3-hop", "GRAIL", "PWAH"}
        assert config.reachability_builds("GO") is builds


class TestTables:
    def test_table2(self, config):
        table = run_table2(config)
        assert isinstance(table, Table)
        assert len(table.rows) == 2

    def test_table3_4_5(self, config):
        t3, t4, t5 = run_table3_4_5(config)
        for t in (t3, t4, t5):
            assert len(t.rows) == 2
            assert t.rows[0]["dataset"] == "GO"

    def test_table6_rank_bounds(self, config):
        table = run_table6(config)
        assert len(table.rows) == 3  # three metrics

    def test_table7(self, config):
        table = run_table7(config)
        assert len(table.rows) == 2
        assert "mu-BFS" in table.columns and "mu-dist" in table.columns

    def test_table8_percentages(self, config):
        table = run_table8(config)
        for row in table.rows:
            ours = [float(str(row[f"Case {c}"]).split(" / ")[0]) for c in (1, 2, 3, 4)]
            assert abs(sum(ours) - 100.0) < 1.0

    def test_table9(self, config):
        table = run_table9(config)
        # only aMaze is in the paper's Table 9 subset of our two datasets
        assert [r["dataset"] for r in table.rows] == ["aMaze"]
        row = table.rows[0]
        assert int(row["|2hop-VC|"]) <= int(row["|VC|"])


class TestAblations:
    def test_covers(self, config):
        table = run_ablation_covers(config)
        assert len(table.rows) == 2
        for row in table.rows:
            assert row["degree |S|"] > 0

    def test_general_k(self, config):
        table = run_ablation_general_k(config)
        for row in table.rows:
            assert row["geometric levels"] >= 1

    def test_case_cost(self, config):
        table = run_ablation_case_cost(config)
        assert len(table.rows) == 2

    def test_online_search(self, config):
        table = run_ablation_online_search(config)
        assert len(table.rows) == 2


class TestCompressionAblation:
    def test_compression_table(self, config):
        from repro.bench.experiments import run_ablation_compression

        table = run_ablation_compression(config)
        assert len(table.rows) == 2
        for row in table.rows:
            assert row["plain MB"] is not None


class TestBuildExperiment:
    def test_run_build_smoke(self):
        from repro.bench.experiments import run_build

        config = SuiteConfig(datasets=("GO",), scale=0.03, queries=50)
        table = run_build(config)
        assert table.rows[-1]["dataset"] == "TOTAL"
        # 3 k values + the aggregate row.
        assert len(table.rows) == 4
        assert all(row["agree"] == "yes" for row in table.rows)
        assert "build" in table.title.lower() or "Build" in table.title


def test_run_dynamic_smoke():
    from repro.bench.experiments import run_dynamic

    config = SuiteConfig(
        datasets=("GO",), scale=0.03, queries=320, bfs_queries=40, seed=2
    )
    table = run_dynamic(config)
    # GO at k = 2 and 6, plus the TOTAL row CI gates on.
    assert [row["dataset"] for row in table.rows] == ["GO", "GO", "TOTAL"]
    for row in table.rows:
        assert row["agree"] == "yes"
    total = table.rows[-1]
    # TOTAL holds raw millisecond sums the CI gate consumes.
    assert total["overlay µs/q"] > 0
    assert total["scalar µs/q"] > 0
    assert total["rebuild ms"] > 0


def test_run_serve_smoke():
    from repro.bench.experiments import run_serve

    config = SuiteConfig(
        datasets=("GO",), scale=0.03, queries=100, seed=2,
        serve_workers=(1, 2),
    )
    open_table, tput = run_serve(config)
    assert [r["dataset"] for r in open_table.rows] == ["GO", "TOTAL"]
    total_open = open_table.rows[-1]
    assert total_open["v2 load ms"] > 0 and total_open["v4 open ms"] > 0
    assert [r["dataset"] for r in tput.rows] == ["GO", "TOTAL"]
    total = tput.rows[-1]
    assert total["inproc ms"] > 0
    assert total["serve@1 ms"] > 0 and total["serve@2 ms"] > 0
    assert all(r["agree"] == "yes" for r in tput.rows)
