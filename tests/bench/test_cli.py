"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == 0.2
        assert args.queries == 20_000

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_all_choice(self):
        assert build_parser().parse_args(["all"]).experiment == "all"


class TestMain:
    def test_table2_tiny(self, capsys):
        rc = main(
            ["table2", "--scale", "0.03", "--queries", "100",
             "--datasets", "GO", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "GO" in out

    def test_markdown_mode(self, capsys):
        main(["table8", "--scale", "0.03", "--queries", "100",
              "--datasets", "GO", "--markdown"])
        out = capsys.readouterr().out
        assert "### Table 8" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        main(["table8", "--scale", "0.03", "--queries", "100",
              "--datasets", "GO", "--output", str(target)])
        capsys.readouterr()
        content = target.read_text()
        assert "Table 8" in content

    def test_dataset_subset_parsing(self, capsys):
        main(["table2", "--scale", "0.03", "--queries", "50",
              "--datasets", "GO, Nasa"])
        out = capsys.readouterr().out
        assert "GO" in out and "Nasa" in out
