"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.scale == 0.2
        assert args.queries == 20_000

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_all_choice(self):
        assert build_parser().parse_args(["all"]).experiment == "all"


class TestMain:
    def test_table2_tiny(self, capsys):
        rc = main(
            ["table2", "--scale", "0.03", "--queries", "100",
             "--datasets", "GO", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "GO" in out

    def test_markdown_mode(self, capsys):
        main(["table8", "--scale", "0.03", "--queries", "100",
              "--datasets", "GO", "--markdown"])
        out = capsys.readouterr().out
        assert "### Table 8" in out

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        main(["table8", "--scale", "0.03", "--queries", "100",
              "--datasets", "GO", "--output", str(target)])
        capsys.readouterr()
        content = target.read_text()
        assert "Table 8" in content

    def test_dataset_subset_parsing(self, capsys):
        main(["table2", "--scale", "0.03", "--queries", "50",
              "--datasets", "GO, Nasa"])
        out = capsys.readouterr().out
        assert "GO" in out and "Nasa" in out


class TestJsonOutput:
    def test_json_payload_written(self, tmp_path, capsys):
        import json

        target = tmp_path / "results.json"
        rc = main(["table8", "--scale", "0.03", "--queries", "100",
                   "--datasets", "GO", "--json", str(target)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(target.read_text())
        assert payload["config"]["datasets"] == ["GO"]
        assert payload["config"]["scale"] == 0.03
        [record] = payload["experiments"]
        assert record["experiment"] == "table8"
        assert record["elapsed_s"] >= 0
        [table] = record["tables"]
        assert table["columns"][0] == "dataset"
        assert table["rows"][0]["dataset"] == "GO"

    def test_json_rows_are_json_native(self, tmp_path, capsys):
        import json

        target = tmp_path / "build.json"
        main(["build", "--scale", "0.03", "--datasets", "GO",
              "--json", str(target)])
        capsys.readouterr()
        rows = json.loads(target.read_text())["experiments"][0]["tables"][0]["rows"]
        total = next(r for r in rows if r["dataset"] == "TOTAL")
        assert isinstance(total["serial ms"], float)
        assert isinstance(total["blocked ms"], float)
        assert all(r["agree"] == "yes" for r in rows)


class TestWorkersFlag:
    def test_default_and_parse(self):
        assert build_parser().parse_args(["table2"]).workers == 1
        assert build_parser().parse_args(["table2", "--workers", "4"]).workers == 4

    def test_workers_routed_to_config(self, capsys):
        # Table 3 construction goes through build_kreach_parallel when
        # --workers > 1; answers must be unchanged.
        rc = main(["table3-4-5", "--scale", "0.03", "--queries", "100",
                   "--datasets", "GO", "--workers", "2"])
        capsys.readouterr()
        assert rc == 0


class TestJsonMetadata:
    def test_meta_block_embedded(self, tmp_path, capsys):
        import json

        target = tmp_path / "meta.json"
        rc = main(["table8", "--scale", "0.03", "--queries", "100",
                   "--datasets", "GO", "--json", str(target)])
        capsys.readouterr()
        assert rc == 0
        meta = json.loads(target.read_text())["meta"]
        # Provenance the cross-PR bench trajectory needs.
        for key in ("git_sha", "numpy_version", "python_version",
                    "platform", "cpu_count", "timestamp_utc"):
            assert key in meta, key
        import numpy as np

        assert meta["numpy_version"] == np.__version__
        # os.cpu_count() may legitimately return None on some platforms.
        assert meta["cpu_count"] is None or meta["cpu_count"] >= 1
        assert "T" in meta["timestamp_utc"]  # ISO-8601
