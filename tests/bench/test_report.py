"""Report/table rendering tests."""

from repro.bench.report import Table, fmt_mb, fmt_ms, fmt_pct, fmt_ratio, fmt_us


class TestFormatters:
    def test_fmt_ms_ranges(self):
        assert fmt_ms(None) == "-"
        assert fmt_ms(123.456) == "123"
        assert fmt_ms(12.345) == "12.35"
        assert fmt_ms(0.1234) == "0.123"

    def test_fmt_mb(self):
        assert fmt_mb(None) == "-"
        assert fmt_mb(2_500_000) == "2.50"

    def test_fmt_pct(self):
        assert fmt_pct(None) == "-"
        assert fmt_pct(0.9397) == "93.97"

    def test_fmt_ratio(self):
        assert fmt_ratio(None) == "-"
        assert fmt_ratio(3.14) == "3.1x"
        assert fmt_ratio(250) == "250x"

    def test_fmt_us_alias(self):
        assert fmt_us(5.0) == fmt_ms(5.0)


class TestTable:
    def make(self):
        t = Table("demo", ["name", "value"], caption="a caption")
        t.add_row({"name": "alpha", "value": 1})
        t.add_row({"name": "beta"})  # missing value -> '-'
        return t

    def test_render_alignment(self):
        out = self.make().render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "-" in lines[4]  # missing cell
        assert "a caption" in out

    def test_markdown(self):
        md = self.make().to_markdown()
        assert md.startswith("### demo")
        assert "| name | value |" in md
        assert "| alpha | 1 |" in md

    def test_float_cells_formatted(self):
        t = Table("t", ["x"])
        t.add_row({"x": 3.14159})
        assert "3.14" in t.render()

    def test_column_values(self):
        t = self.make()
        assert t.column_values("value") == [1, None]

    def test_empty_table_renders(self):
        t = Table("empty", ["a", "b"])
        out = t.render()
        assert "a" in out and "b" in out
