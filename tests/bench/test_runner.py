"""Runner timing-primitive tests."""

import numpy as np
import pytest

from repro.baselines.base import IndexBudgetExceeded
from repro.bench.runner import build_index, time_queries, timed


class FakeIndex:
    def storage_bytes(self):
        return 1234


class TestTimed:
    def test_returns_result_and_elapsed(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0


class TestBuildIndex:
    def test_success(self):
        outcome = build_index("fake", FakeIndex)
        assert outcome.ok
        assert outcome.name == "fake"
        assert outcome.storage_bytes == 1234
        assert outcome.seconds is not None and outcome.seconds >= 0

    def test_budget_failure_captured(self):
        def boom():
            raise IndexBudgetExceeded("too big")

        outcome = build_index("fail", boom)
        assert not outcome.ok
        assert outcome.failure == "too big"
        assert outcome.storage_bytes is None

    def test_other_exceptions_propagate(self):
        def boom():
            raise RuntimeError("unexpected")

        with pytest.raises(RuntimeError):
            build_index("fail", boom)

    def test_index_without_storage_method(self):
        outcome = build_index("raw", lambda: object())
        assert outcome.ok and outcome.storage_bytes is None


class TestTimeQueries:
    def test_counts_positives(self):
        pairs = np.array([[0, 1], [1, 2], [2, 0]])
        timing = time_queries(lambda s, t: s < t, pairs)
        assert timing.count == 3
        assert timing.positives == 2
        assert timing.seconds >= 0

    def test_us_per_query(self):
        pairs = np.array([[0, 0]] * 10)
        timing = time_queries(lambda s, t: True, pairs)
        assert timing.us_per_query == pytest.approx(
            1e6 * timing.seconds / 10
        )

    def test_scaled_ms(self):
        pairs = np.array([[0, 0]] * 10)
        timing = time_queries(lambda s, t: True, pairs)
        assert timing.scaled_ms(1_000_000) == pytest.approx(
            1e3 * timing.seconds * 100_000
        )

    def test_empty_batch(self):
        timing = time_queries(lambda s, t: True, np.empty((0, 2), dtype=np.int64))
        assert timing.count == 0 and timing.positives == 0
