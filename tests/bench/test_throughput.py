"""Throughput guard: the batch engine must actually be vectorized.

The smoke test the issue asks for — on a mid-size synthetic graph,
``query_batch`` over 10k pairs must beat the scalar loop *and* return
identical answers.  A silent de-vectorization (say, a future edit turning
the hot path back into a per-pair Python loop) shows up here as a timing
inversion long before anyone reruns the full benchmarks.
"""

import numpy as np

from repro.bench.experiments import SuiteConfig, run_throughput
from repro.bench.runner import time_batch_queries, time_queries
from repro.core.kreach import KReachIndex
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


def test_batch_beats_scalar_loop_with_identical_answers():
    g = gnp_digraph(1500, 0.003, seed=9)  # mid-size: ~6.7k edges
    idx = KReachIndex(g, 3).prepare_batch()
    pairs = random_pairs(g.n, 10_000, rng=np.random.default_rng(9))

    scalar_answers = np.fromiter(
        (idx.query(int(s), int(t)) for s, t in pairs), dtype=bool, count=len(pairs)
    )
    batch_answers = idx.query_batch(pairs)
    assert np.array_equal(batch_answers, scalar_answers)

    # Best-of-two on both sides damps scheduler noise; a de-vectorized
    # batch path (scalar loop + array overhead) still loses every run.
    by_time = lambda timing: timing.seconds  # noqa: E731
    scalar = min((time_queries(idx.query, pairs) for _ in range(2)), key=by_time)
    batch = min(
        (time_batch_queries(idx.query_batch, pairs) for _ in range(2)), key=by_time
    )
    assert batch.positives == scalar.positives
    assert batch.seconds < scalar.seconds, (
        f"batch engine ({batch.seconds:.4f}s) no faster than the scalar "
        f"loop ({scalar.seconds:.4f}s) on 10k pairs — hot path de-vectorized?"
    )


def test_run_throughput_agrees():
    config = SuiteConfig(
        datasets=("GO",), scale=0.05, queries=500, bfs_queries=200, seed=3
    )
    table = run_throughput(config)
    # GO: k-reach k = 2/6/n plus (2,k)-reach k = 6/n; HubStress: k = 2/6/n;
    # and the TOTAL aggregation row CI gates on.
    assert len(table.rows) == 9
    datasets = {row["dataset"] for row in table.rows}
    assert datasets == {"GO", "HubStress", "TOTAL"}
    for row in table.rows:
        assert row["agree"] == "yes"
    total = next(r for r in table.rows if r["dataset"] == "TOTAL")
    assert total["scalar µs/q"] > 0 and total["bitset µs/q"] > 0
