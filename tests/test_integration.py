"""End-to-end integration tests: dataset stand-ins -> every index -> one
truth, plus the example scripts."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import (
    BfsIndex,
    ChainCoverIndex,
    GrailIndex,
    PathTreeIndex,
    PrunedLandmarkIndex,
    PwahIndex,
    TransitiveClosureIndex,
)
from repro.core import ExactKFamily, HKReachIndex, KReachIndex
from repro.datasets import load
from repro.workloads import random_pairs

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize("name", ["GO", "aMaze", "Nasa", "CiteSeer"])
def test_all_indexes_agree_on_dataset_standins(name):
    g = load(name, scale=0.02)
    truth = TransitiveClosureIndex(g)
    indexes = [
        KReachIndex(g, None),
        HKReachIndex(g, 2, None),
        GrailIndex(g, num_labels=2, seed=0),
        PwahIndex(g),
        PathTreeIndex(g),
        ChainCoverIndex(g),
        PrunedLandmarkIndex(g),
    ]
    pairs = random_pairs(g.n, 300, rng=np.random.default_rng(0))
    for s, t in pairs:
        s, t = int(s), int(t)
        expected = truth.reaches(s, t)
        for ix in indexes:
            assert ix.reaches(s, t) == expected, (name, type(ix).__name__, s, t)


@pytest.mark.parametrize("name", ["GO", "Kegg"])
def test_khop_indexes_agree_on_dataset_standins(name):
    g = load(name, scale=0.02)
    bfs = BfsIndex(g)
    fam = ExactKFamily(g)
    pll = PrunedLandmarkIndex(g)
    pairs = random_pairs(g.n, 80, rng=np.random.default_rng(1))
    for k in (1, 2, 3, 6):
        idx = KReachIndex(g, k)
        for s, t in pairs:
            s, t = int(s), int(t)
            expected = bfs.reaches_within(s, t, k)
            assert idx.query(s, t) == expected, (name, k, s, t)
            assert fam.reaches_within(s, t, k) == expected, (name, k, s, t)
            assert pll.reaches_within(s, t, k) == expected, (name, k, s, t)


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "paper_walkthrough.py", "social_influence.py",
     "sensor_network.py", "citation_analysis.py", "index_lifecycle.py",
     "dynamic_social_graph.py"],
)
def test_example_scripts_run(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path), "--fast"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
