"""WAH codec tests: round trips, probes, compression behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitsets.wah import GROUP_BITS, WahBitVector


class TestRoundTrip:
    def test_empty(self):
        w = WahBitVector.compress(np.zeros(0, dtype=bool))
        assert w.size == 0
        assert len(w.decompress()) == 0

    def test_all_zeros(self):
        bits = np.zeros(1000, dtype=bool)
        w = WahBitVector.compress(bits)
        assert np.array_equal(w.decompress(), bits)
        assert len(w.words) == 1  # one fill word

    def test_all_ones_aligned(self):
        bits = np.ones(GROUP_BITS * 32, dtype=bool)
        w = WahBitVector.compress(bits)
        assert np.array_equal(w.decompress(), bits)
        assert len(w.words) == 1

    def test_all_ones_with_tail(self):
        # the padded tail group is not all-ones, so it stays a literal
        bits = np.ones(1000, dtype=bool)
        w = WahBitVector.compress(bits)
        assert np.array_equal(w.decompress(), bits)
        assert len(w.words) == 2

    def test_single_bit_positions(self):
        for pos in (0, 30, 31, 61, 62, 99):
            bits = np.zeros(100, dtype=bool)
            bits[pos] = True
            w = WahBitVector.compress(bits)
            assert np.array_equal(w.decompress(), bits), pos

    def test_non_multiple_of_group(self):
        bits = np.zeros(GROUP_BITS * 2 + 7, dtype=bool)
        bits[-1] = True
        w = WahBitVector.compress(bits)
        assert np.array_equal(w.decompress(), bits)

    @pytest.mark.parametrize("seed", range(5))
    def test_random(self, seed):
        rng = np.random.default_rng(seed)
        bits = rng.random(rng.integers(1, 2000)) < rng.random()
        w = WahBitVector.compress(bits)
        assert np.array_equal(w.decompress(), bits)


class TestProbe:
    def test_test_matches_bits(self):
        rng = np.random.default_rng(3)
        bits = rng.random(777) < 0.02
        w = WahBitVector.compress(bits)
        for i in range(777):
            assert w.test(i) == bool(bits[i]), i

    def test_out_of_range(self):
        w = WahBitVector.compress(np.zeros(10, dtype=bool))
        with pytest.raises(IndexError):
            w.test(10)
        with pytest.raises(IndexError):
            w.test(-1)

    def test_from_indices(self):
        w = WahBitVector.from_indices(500, [0, 250, 499])
        assert w.test(0) and w.test(250) and w.test(499)
        assert not w.test(1)


class TestCount:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.5, 0.99, 1.0])
    def test_count_matches(self, density):
        rng = np.random.default_rng(7)
        bits = rng.random(1234) < density
        w = WahBitVector.compress(bits)
        assert w.count() == int(bits.sum())

    def test_count_with_partial_tail_fill(self):
        # all ones with a size that cuts the last group mid-way
        bits = np.ones(GROUP_BITS + 5, dtype=bool)
        w = WahBitVector.compress(bits)
        assert w.count() == GROUP_BITS + 5


class TestCompression:
    def test_sparse_compresses_well(self):
        bits = np.zeros(31 * 1000, dtype=bool)
        bits[0] = True
        w = WahBitVector.compress(bits)
        # literal + one long zero fill
        assert len(w.words) == 2
        assert w.compression_ratio() > 100

    def test_dense_random_does_not_explode(self):
        rng = np.random.default_rng(0)
        bits = rng.random(3100) < 0.5
        w = WahBitVector.compress(bits)
        # at worst one word per 31-bit group
        assert len(w.words) <= (3100 + GROUP_BITS - 1) // GROUP_BITS

    def test_long_run_splits_over_run_mask(self):
        # a run longer than the 30-bit run-length field still round-trips
        # (build synthetically: size chosen so runs stay modest in tests,
        # here we just sanity check the chunking constant exists)
        bits = np.zeros(31 * 100, dtype=bool)
        w = WahBitVector.compress(bits)
        assert np.array_equal(w.decompress(), bits)

    def test_equality(self):
        a = WahBitVector.from_indices(100, [5])
        b = WahBitVector.from_indices(100, [5])
        c = WahBitVector.from_indices(100, [6])
        assert a == b and a != c

    def test_storage_bytes(self):
        w = WahBitVector.compress(np.zeros(31 * 10, dtype=bool))
        assert w.storage_bytes() == 4 * len(w.words)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.booleans(), min_size=0, max_size=400))
def test_property_round_trip(bools):
    bits = np.asarray(bools, dtype=bool)
    w = WahBitVector.compress(bits)
    assert np.array_equal(w.decompress(), bits)
    assert w.count() == int(bits.sum())
    if len(bits):
        i = len(bits) // 2
        assert w.test(i) == bool(bits[i])
