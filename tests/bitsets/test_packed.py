"""PackedIntArray tests: bit packing across word boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitsets.packed import PackedIntArray, bits_needed


class TestBitsNeeded:
    def test_values(self):
        assert bits_needed(1) == 1
        assert bits_needed(2) == 1
        assert bits_needed(3) == 2
        assert bits_needed(4) == 2
        assert bits_needed(5) == 3
        assert bits_needed(256) == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            bits_needed(0)


class TestPackedIntArray:
    def test_default_zero(self):
        a = PackedIntArray(10, bits=3)
        assert a.to_list() == [0] * 10

    def test_set_get(self):
        a = PackedIntArray(5, bits=2)
        a[0] = 3
        a[4] = 1
        assert a[0] == 3 and a[1] == 0 and a[4] == 1

    def test_word_boundary_straddle(self):
        # 5-bit entries: entry 12 spans bits 60..64 (crosses the word edge)
        a = PackedIntArray(20, bits=5)
        a[12] = 0b10101
        a[11] = 0b01010
        a[13] = 0b11111
        assert a[12] == 0b10101
        assert a[11] == 0b01010
        assert a[13] == 0b11111

    def test_overwrite(self):
        a = PackedIntArray(3, bits=4)
        a[1] = 9
        a[1] = 4
        assert a[1] == 4

    def test_value_range_validation(self):
        a = PackedIntArray(3, bits=2)
        with pytest.raises(ValueError):
            a[0] = 4
        with pytest.raises(ValueError):
            a[0] = -1

    def test_index_bounds(self):
        a = PackedIntArray(3, bits=2)
        with pytest.raises(IndexError):
            a[3]
        with pytest.raises(IndexError):
            a[-1] = 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            PackedIntArray(-1, bits=2)
        with pytest.raises(ValueError):
            PackedIntArray(3, bits=0)
        with pytest.raises(ValueError):
            PackedIntArray(3, bits=33)

    def test_from_values(self):
        a = PackedIntArray.from_values([1, 2, 3, 0, 3], bits=2)
        assert a.to_list() == [1, 2, 3, 0, 3]

    def test_len(self):
        assert len(PackedIntArray(7, bits=2)) == 7

    def test_storage_bytes(self):
        # 100 entries * 2 bits = 200 bits = 25 bytes
        assert PackedIntArray(100, bits=2).storage_bytes() == 25
        assert PackedIntArray(0, bits=2).storage_bytes() == 0

    def test_zero_length(self):
        a = PackedIntArray(0, bits=2)
        assert a.to_list() == []


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=1, max_value=17),
    st.lists(st.integers(min_value=0, max_value=2**17 - 1), min_size=1, max_size=100),
)
def test_property_round_trip(bits, values):
    mask = (1 << bits) - 1
    clipped = [v & mask for v in values]
    a = PackedIntArray.from_values(clipped, bits=bits)
    assert a.to_list() == clipped


class TestVectorizedPackUnpack:
    def test_numpy_round_trip(self):
        rng = np.random.default_rng(3)
        for bits in (1, 2, 5, 8, 13, 32):
            values = rng.integers(0, 1 << bits, size=523, dtype=np.int64)
            a = PackedIntArray.from_numpy(values, bits=bits)
            assert np.array_equal(a.as_numpy(), values)
            # Scalar and vectorized decoders agree on the same words.
            assert a.to_list()[:17] == values[:17].tolist()

    def test_from_numpy_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PackedIntArray.from_numpy(np.array([4]), bits=2)
        with pytest.raises(ValueError):
            PackedIntArray.from_numpy(np.array([-1]), bits=2)

    def test_words_round_trip(self):
        values = np.array([3, 1, 2, 0, 3, 3, 1], dtype=np.int64)
        a = PackedIntArray.from_numpy(values, bits=2)
        b = PackedIntArray.from_words(a.words, len(values), bits=2)
        assert b.to_list() == values.tolist()

    def test_from_words_rejects_oversized(self):
        with pytest.raises(ValueError):
            PackedIntArray.from_words(np.zeros(9, dtype=np.uint64), 3, bits=2)

    def test_empty(self):
        a = PackedIntArray.from_numpy(np.empty(0, dtype=np.int64), bits=4)
        assert a.as_numpy().shape == (0,)

    def test_scalar_writes_visible_to_vectorized_reader(self):
        a = PackedIntArray(70, bits=5)
        a[0] = 21
        a[12] = 19  # straddles the first word boundary
        a[69] = 31
        dense = a.as_numpy()
        assert dense[0] == 21 and dense[12] == 19 and dense[69] == 31
