"""Bitset unit tests."""

import numpy as np
import pytest

from repro.bitsets.bitset import Bitset


class TestBitset:
    def test_initially_empty(self):
        b = Bitset(100)
        assert b.count() == 0
        assert not b.test(0) and not b.test(99)

    def test_set_and_test(self):
        b = Bitset(100)
        b.set(0)
        b.set(63)
        b.set(64)
        b.set(99)
        assert all(b.test(i) for i in (0, 63, 64, 99))
        assert not b.test(1)

    def test_clear(self):
        b = Bitset(70)
        b.set(65)
        b.clear(65)
        assert not b.test(65)

    def test_bounds(self):
        b = Bitset(10)
        with pytest.raises(IndexError):
            b.set(10)
        with pytest.raises(IndexError):
            b.test(-1)

    def test_from_indices(self):
        b = Bitset.from_indices(200, [3, 64, 128, 3])
        assert sorted(b) == [3, 64, 128]
        with pytest.raises(IndexError):
            Bitset.from_indices(10, [10])

    def test_union_update(self):
        a = Bitset.from_indices(100, [1, 2])
        b = Bitset.from_indices(100, [2, 70])
        a.union_update(b)
        assert sorted(a) == [1, 2, 70]

    def test_union_size_mismatch(self):
        with pytest.raises(ValueError):
            Bitset(10).union_update(Bitset(20))

    def test_intersects(self):
        a = Bitset.from_indices(100, [5, 80])
        b = Bitset.from_indices(100, [80])
        c = Bitset.from_indices(100, [6])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_count_and_len(self):
        b = Bitset.from_indices(130, range(0, 130, 3))
        assert b.count() == len(range(0, 130, 3))
        assert len(b) == b.count()

    def test_indices_sorted(self):
        b = Bitset.from_indices(100, [90, 5, 40])
        assert b.indices().tolist() == [5, 40, 90]

    def test_contains(self):
        b = Bitset.from_indices(50, [7])
        assert 7 in b
        assert 8 not in b
        assert 200 not in b  # out of range is just False

    def test_copy_is_independent(self):
        a = Bitset.from_indices(64, [1])
        c = a.copy()
        c.set(2)
        assert not a.test(2)

    def test_equality(self):
        assert Bitset.from_indices(64, [1, 5]) == Bitset.from_indices(64, [5, 1])
        assert Bitset(64) != Bitset(65)

    def test_zero_size(self):
        b = Bitset(0)
        assert b.count() == 0 and list(b) == []

    def test_storage_bytes(self):
        assert Bitset(64).storage_bytes() == 8
        assert Bitset(65).storage_bytes() == 16

    def test_random_against_python_set(self):
        rng = np.random.default_rng(1)
        universe = 500
        reference = set(int(v) for v in rng.integers(0, universe, size=120))
        b = Bitset.from_indices(universe, reference)
        assert set(b) == reference
        assert b.count() == len(reference)
