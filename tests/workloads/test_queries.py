"""Workload generator tests."""

import numpy as np
import pytest

from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, path_graph, star_graph
from repro.graph.traversal import reaches_within_bfs
from repro.workloads import (
    case_distribution,
    celebrity_pairs,
    positive_pairs,
    random_pairs,
)


class TestRandomPairs:
    def test_shape_and_bounds(self):
        pairs = random_pairs(50, 200, rng=np.random.default_rng(1))
        assert pairs.shape == (200, 2)
        assert pairs.min() >= 0 and pairs.max() < 50

    def test_deterministic_with_rng(self):
        a = random_pairs(50, 100, rng=np.random.default_rng(3))
        b = random_pairs(50, 100, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pairs(0, 10)
        with pytest.raises(ValueError):
            random_pairs(5, -1)

    def test_zero_count(self):
        assert random_pairs(5, 0).shape == (0, 2)


class TestCelebrityPairs:
    def test_one_endpoint_is_celebrity(self):
        g = star_graph(100)
        pairs = celebrity_pairs(g, 50, top_fraction=0.01, rng=np.random.default_rng(2))
        # the only high-degree vertex is the hub 0
        assert all(s == 0 or t == 0 for s, t in pairs)

    def test_both_sides_used(self):
        g = star_graph(100)
        pairs = celebrity_pairs(g, 200, top_fraction=0.01, rng=np.random.default_rng(3))
        assert any(s == 0 for s, t in pairs)
        assert any(t == 0 for s, t in pairs)

    def test_empty_graph(self):
        with pytest.raises(ValueError):
            celebrity_pairs(DiGraph(0), 5)


class TestPositivePairs:
    def test_all_positive_unbounded(self):
        g = gnp_digraph(30, 0.15, seed=1)
        pairs = positive_pairs(g, 40, rng=np.random.default_rng(1))
        for s, t in pairs:
            assert reaches_within_bfs(g, int(s), int(t), None)

    def test_all_positive_with_k(self):
        g = gnp_digraph(30, 0.15, seed=2)
        pairs = positive_pairs(g, 40, k=2, rng=np.random.default_rng(2))
        for s, t in pairs:
            assert reaches_within_bfs(g, int(s), int(t), 2)

    def test_impossible_sampling_raises(self):
        g = DiGraph(5)  # no edges at all: no positives exist
        with pytest.raises(RuntimeError, match="positive pairs"):
            positive_pairs(g, 5, max_attempts_factor=3)

    def test_dead_sources_bfs_once(self, monkeypatch):
        """Rejection sampling memoizes empty-ball sources: each dead
        vertex pays at most one BFS no matter how often it is redrawn."""
        import repro.workloads.queries as queries

        g = DiGraph(21, [(0, 1)])  # one live source, twenty dead ones
        calls: list[int] = []
        real = queries.bfs_distances_scalar

        def counting(graph, s, **kwargs):
            calls.append(s)
            return real(graph, s, **kwargs)

        monkeypatch.setattr(queries, "bfs_distances_scalar", counting)
        pairs = positive_pairs(g, 10, rng=np.random.default_rng(6))
        assert all((int(s), int(t)) == (0, 1) for s, t in pairs)
        dead_calls = [s for s in calls if s != 0]
        assert len(dead_calls) == len(set(dead_calls))

    def test_all_dead_fails_fast(self):
        """A graph whose every ball is empty raises as soon as all
        sources are known dead, instead of burning the attempt budget."""
        g = DiGraph(4)
        with pytest.raises(RuntimeError, match="positive pairs"):
            positive_pairs(g, 3, max_attempts_factor=10_000)


class TestCaseDistribution:
    def test_sums_to_one(self):
        g = gnp_digraph(40, 0.1, seed=4)
        idx = KReachIndex(g, 3)
        pairs = random_pairs(g.n, 500, rng=np.random.default_rng(4))
        dist = case_distribution(idx, pairs)
        assert set(dist) == {1, 2, 3, 4}
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_full_cover_is_all_case1(self):
        g = path_graph(6)
        idx = KReachIndex(g, 2, cover=frozenset(range(6)))
        pairs = random_pairs(6, 100, rng=np.random.default_rng(5))
        dist = case_distribution(idx, pairs)
        assert dist[1] == 1.0
