"""Workload generator tests."""

import numpy as np
import pytest

from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnp_digraph, path_graph, star_graph
from repro.graph.traversal import reaches_within_bfs
from repro.workloads import (
    case_distribution,
    celebrity_pairs,
    positive_pairs,
    random_pairs,
)


class TestRandomPairs:
    def test_shape_and_bounds(self):
        pairs = random_pairs(50, 200, rng=np.random.default_rng(1))
        assert pairs.shape == (200, 2)
        assert pairs.min() >= 0 and pairs.max() < 50

    def test_deterministic_with_rng(self):
        a = random_pairs(50, 100, rng=np.random.default_rng(3))
        b = random_pairs(50, 100, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_pairs(0, 10)
        with pytest.raises(ValueError):
            random_pairs(5, -1)

    def test_zero_count(self):
        assert random_pairs(5, 0).shape == (0, 2)


class TestCelebrityPairs:
    def test_one_endpoint_is_celebrity(self):
        g = star_graph(100)
        pairs = celebrity_pairs(g, 50, top_fraction=0.01, rng=np.random.default_rng(2))
        # the only high-degree vertex is the hub 0
        assert all(s == 0 or t == 0 for s, t in pairs)

    def test_both_sides_used(self):
        g = star_graph(100)
        pairs = celebrity_pairs(g, 200, top_fraction=0.01, rng=np.random.default_rng(3))
        assert any(s == 0 for s, t in pairs)
        assert any(t == 0 for s, t in pairs)

    def test_empty_graph(self):
        with pytest.raises(ValueError):
            celebrity_pairs(DiGraph(0), 5)


class TestPositivePairs:
    def test_all_positive_unbounded(self):
        g = gnp_digraph(30, 0.15, seed=1)
        pairs = positive_pairs(g, 40, rng=np.random.default_rng(1))
        for s, t in pairs:
            assert reaches_within_bfs(g, int(s), int(t), None)

    def test_all_positive_with_k(self):
        g = gnp_digraph(30, 0.15, seed=2)
        pairs = positive_pairs(g, 40, k=2, rng=np.random.default_rng(2))
        for s, t in pairs:
            assert reaches_within_bfs(g, int(s), int(t), 2)

    def test_impossible_sampling_raises(self):
        g = DiGraph(5)  # no edges at all: no positives exist
        with pytest.raises(RuntimeError, match="positive pairs"):
            positive_pairs(g, 5, max_attempts_factor=3)

    def test_dead_sources_bfs_once(self, monkeypatch):
        """Rejection sampling memoizes empty-ball sources: each dead
        vertex pays at most one BFS no matter how often it is redrawn."""
        import repro.workloads.queries as queries

        g = DiGraph(21, [(0, 1)])  # one live source, twenty dead ones
        calls: list[int] = []
        real = queries.bfs_distances_scalar

        def counting(graph, s, **kwargs):
            calls.append(s)
            return real(graph, s, **kwargs)

        monkeypatch.setattr(queries, "bfs_distances_scalar", counting)
        pairs = positive_pairs(g, 10, rng=np.random.default_rng(6))
        assert all((int(s), int(t)) == (0, 1) for s, t in pairs)
        dead_calls = [s for s in calls if s != 0]
        assert len(dead_calls) == len(set(dead_calls))

    def test_all_dead_fails_fast(self):
        """A graph whose every ball is empty raises as soon as all
        sources are known dead, instead of burning the attempt budget."""
        g = DiGraph(4)
        with pytest.raises(RuntimeError, match="positive pairs"):
            positive_pairs(g, 3, max_attempts_factor=10_000)


class TestCaseDistribution:
    def test_sums_to_one(self):
        g = gnp_digraph(40, 0.1, seed=4)
        idx = KReachIndex(g, 3)
        pairs = random_pairs(g.n, 500, rng=np.random.default_rng(4))
        dist = case_distribution(idx, pairs)
        assert set(dist) == {1, 2, 3, 4}
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_full_cover_is_all_case1(self):
        g = path_graph(6)
        idx = KReachIndex(g, 2, cover=frozenset(range(6)))
        pairs = random_pairs(6, 100, rng=np.random.default_rng(5))
        dist = case_distribution(idx, pairs)
        assert dist[1] == 1.0


class TestChurnTrace:
    def _graph(self):
        return gnp_digraph(30, 0.08, seed=5)

    def test_deterministic_with_rng(self):
        from repro.workloads import churn_trace

        g = self._graph()
        a = churn_trace(g, 40, rng=np.random.default_rng(4))
        b = churn_trace(g, 40, rng=np.random.default_rng(4))
        assert len(a) == len(b)
        for op_a, op_b in zip(a, b):
            assert op_a[0] == op_b[0]
            if op_a[0] == "query":
                assert np.array_equal(op_a[1], op_b[1])
            else:
                assert op_a[1:] == op_b[1:]

    def test_fixed_read_mix_and_batch_shape(self):
        from repro.workloads import churn_trace

        g = self._graph()
        trace = churn_trace(
            g, 40, read_fraction=0.75, batch_size=17,
            rng=np.random.default_rng(1),
        )
        queries = [op for op in trace if op[0] == "query"]
        assert len(queries) == 30  # exactly round(40 * 0.75), any seed
        for _, pairs in queries:
            assert pairs.shape == (17, 2)
            assert pairs.min() >= 0 and pairs.max() < g.n

    def test_writes_track_live_edges(self):
        from repro.workloads import churn_trace

        g = self._graph()
        trace = churn_trace(
            g, 60, read_fraction=0.3, rng=np.random.default_rng(2)
        )
        live = {(int(u), int(v)) for u, v in g.edges()}
        for op in trace:
            if op[0] == "insert":
                assert op[1] != op[2]
                assert (op[1], op[2]) not in live
                live.add((op[1], op[2]))
            elif op[0] == "delete":
                assert (op[1], op[2]) in live
                live.discard((op[1], op[2]))

    def test_write_burst_multiplies_writes(self):
        from repro.workloads import churn_trace

        g = self._graph()
        trace = churn_trace(
            g, 24, read_fraction=0.5, write_burst=4,
            rng=np.random.default_rng(3),
        )
        writes = sum(1 for op in trace if op[0] != "query")
        assert writes == 12 * 4  # every write event expands into a burst

    def test_validation(self):
        from repro.workloads import churn_trace

        g = self._graph()
        with pytest.raises(ValueError):
            churn_trace(g, -1)
        with pytest.raises(ValueError):
            churn_trace(g, 5, read_fraction=1.5)
        with pytest.raises(ValueError):
            churn_trace(g, 5, insert_fraction=-0.1)
        with pytest.raises(ValueError):
            churn_trace(g, 5, batch_size=0)
        with pytest.raises(ValueError):
            churn_trace(g, 5, write_burst=0)

    def test_trace_drives_dynamic_index(self):
        from repro.core import DynamicKReachIndex
        from repro.workloads import churn_trace

        g = self._graph()
        trace = churn_trace(
            g, 30, read_fraction=0.5, batch_size=32,
            rng=np.random.default_rng(6),
        )
        dyn = DynamicKReachIndex(g, 3)
        for op in trace:
            if op[0] == "query":
                answers = dyn.query_batch(op[1])
                assert np.array_equal(
                    answers, dyn.query_batch(op[1], engine="scalar")
                )
            elif op[0] == "insert":
                dyn.insert_edge(op[1], op[2])
            else:
                dyn.delete_edge(op[1], op[2])
