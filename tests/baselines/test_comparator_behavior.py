"""Behavioral tests matching the paper's §3/§6 claims about comparators."""

import numpy as np
import pytest

from repro.baselines import (
    ChainCoverIndex,
    GrailIndex,
    PathTreeIndex,
    PrunedLandmarkIndex,
    PwahIndex,
)
from repro.datasets import load
from repro.graph.generators import gnp_digraph, random_dag
from repro.workloads import random_pairs


class TestGrailLabelSensitivity:
    """More GRAIL labels -> fewer interval false positives (GRAIL's knob)."""

    def test_exception_rate_non_increasing_in_labels(self):
        g = random_dag(60, 150, seed=6)
        pairs = random_pairs(g.n, 400, rng=np.random.default_rng(2))
        rates = [
            GrailIndex(g, num_labels=d, seed=3).exception_rate(pairs)
            for d in (1, 3, 6)
        ]
        assert rates[2] <= rates[0] + 0.05  # allow randomization noise

    def test_answers_invariant_in_labels(self):
        g = gnp_digraph(40, 0.08, seed=7)
        a = GrailIndex(g, num_labels=1, seed=1)
        b = GrailIndex(g, num_labels=5, seed=9)
        for s in range(g.n):
            for t in range(0, g.n, 3):
                assert a.reaches(s, t) == b.reaches(s, t)


class TestPwahCompression:
    """PWAH's value proposition: long 0/1 runs compress well (§3.6)."""

    def test_dataset_standins_compress(self):
        for name in ("GO", "Nasa"):
            idx = PwahIndex(load(name, scale=0.05))
            assert idx.compression_ratio() > 1.5, name


class TestChainCoverDecompositions:
    def test_matching_shrinks_labels(self):
        g = random_dag(60, 140, seed=8)
        greedy = ChainCoverIndex(g, decomposition="greedy")
        matching = ChainCoverIndex(g, decomposition="matching")
        assert matching.chain_count <= greedy.chain_count
        # fewer chains usually means fewer label entries too
        assert matching.label_entries <= greedy.label_entries * 1.1


class TestPathTreeOnDatasets:
    def test_interval_counts_stay_moderate_on_tree_like_data(self):
        g = load("Nasa", scale=0.05)
        idx = PathTreeIndex(g)
        # tree-like XML: not much worse than one interval per DAG vertex
        assert idx.interval_count < 5 * g.n


class TestPllLabelGrowth:
    def test_hub_first_ordering_bounds_labels(self):
        # on a hub-dominated metabolic stand-in the first landmarks cover
        # almost everything: labels stay tiny
        g = load("AgroCyc", scale=0.05)
        idx = PrunedLandmarkIndex(g)
        assert idx.average_label_size() < 12
