"""Per-index structural tests for the precomputed comparators."""

import numpy as np
import pytest

from repro.baselines.base import IndexBudgetExceeded, UnsupportedQueryError
from repro.baselines.chain_cover import ChainCoverIndex
from repro.baselines.grail import GrailIndex
from repro.baselines.path_tree import PathTreeIndex, _coalesce
from repro.baselines.pll import PrunedLandmarkIndex
from repro.baselines.pwah import PwahIndex
from repro.baselines.transitive_closure import TransitiveClosureIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    cycle_graph,
    gnp_digraph,
    path_graph,
    random_dag,
    star_graph,
)
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.workloads import random_pairs


class TestTransitiveClosure:
    def test_reachable_count(self):
        idx = TransitiveClosureIndex(path_graph(5))
        assert idx.reachable_count(0) == 5
        assert idx.reachable_count(4) == 1

    def test_reachable_count_with_scc(self):
        g = DiGraph(4, [(0, 1), (1, 0), (1, 2)])
        idx = TransitiveClosureIndex(g)
        assert idx.reachable_count(0) == 3  # {0, 1, 2}

    def test_same_scc_is_reachable(self):
        idx = TransitiveClosureIndex(cycle_graph(4))
        assert idx.reaches(2, 2 - 1)

    def test_khop_unsupported(self):
        idx = TransitiveClosureIndex(path_graph(3))
        with pytest.raises(UnsupportedQueryError):
            idx.reaches_within(0, 1, 1)


class TestGrail:
    def test_num_labels_validation(self):
        with pytest.raises(ValueError):
            GrailIndex(path_graph(3), num_labels=0)

    def test_more_labels_cost_more_storage(self):
        g = gnp_digraph(30, 0.1, seed=1)
        a = GrailIndex(g, num_labels=2)
        b = GrailIndex(g, num_labels=5)
        assert b.storage_bytes() > a.storage_bytes()

    def test_exception_rate_bounds(self):
        g = gnp_digraph(40, 0.08, seed=2)
        idx = GrailIndex(g, num_labels=3)
        rate = idx.exception_rate(random_pairs(g.n, 300))
        assert 0.0 <= rate <= 1.0

    def test_intervals_are_containment_sound(self):
        # interval containment is a necessary condition: wherever the truth
        # is "reachable", the filter must pass (no false negatives).
        g = random_dag(30, 70, seed=3)
        idx = GrailIndex(g, num_labels=3, seed=5)
        for s in range(g.n):
            dist = bfs_distances(g, s)
            for t in range(g.n):
                if s != t and dist[t] != UNREACHED:
                    cs, ct = int(idx._comp[s]), int(idx._comp[t])
                    assert idx._maybe_reaches(cs, ct)

    def test_khop_unsupported(self):
        idx = GrailIndex(path_graph(3))
        with pytest.raises(UnsupportedQueryError):
            idx.reaches_within(0, 1, 1)


class TestPwah:
    def test_compression_ratio_on_sparse_graph(self):
        # a star's TC rows are tiny: compression should beat raw bitmaps
        idx = PwahIndex(star_graph(500))
        assert idx.compression_ratio() > 1.0

    def test_khop_unsupported(self):
        idx = PwahIndex(path_graph(3))
        with pytest.raises(UnsupportedQueryError):
            idx.reaches_within(0, 1, 1)

    def test_cyclic_input_handled_via_condensation(self):
        g = DiGraph(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        idx = PwahIndex(g)
        assert idx.reaches(0, 4)
        assert not idx.reaches(4, 0)
        assert idx.reaches(1, 0)  # same SCC


class TestPathTree:
    def test_coalesce(self):
        assert _coalesce([]) == []
        assert _coalesce([(1, 3), (2, 5)]) == [(1, 5)]
        assert _coalesce([(1, 2), (3, 4)]) == [(1, 4)]  # adjacent merge
        assert _coalesce([(1, 2), (4, 5)]) == [(1, 2), (4, 5)]
        assert _coalesce([(4, 5), (1, 2)]) == [(1, 2), (4, 5)]
        assert _coalesce([(1, 10), (2, 3)]) == [(1, 10)]

    def test_interval_count_reasonable_on_tree(self):
        # on a pure tree the tree interval alone suffices: 1 per vertex
        g = DiGraph(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)])
        idx = PathTreeIndex(g)
        assert idx.interval_count == 7

    def test_khop_unsupported(self):
        idx = PathTreeIndex(path_graph(3))
        with pytest.raises(UnsupportedQueryError):
            idx.reaches_within(0, 1, 1)


class TestChainCover:
    def test_chain_count_le_n(self):
        g = random_dag(25, 50, seed=1)
        idx = ChainCoverIndex(g)
        assert 1 <= idx.chain_count <= g.n

    def test_matching_no_more_chains_than_greedy(self):
        g = random_dag(40, 90, seed=2)
        greedy = ChainCoverIndex(g, decomposition="greedy")
        matching = ChainCoverIndex(g, decomposition="matching")
        assert matching.chain_count <= greedy.chain_count

    def test_chains_are_paths(self):
        # consecutive chain members must be DAG edges
        g = random_dag(30, 60, seed=3)
        idx = ChainCoverIndex(g, decomposition="matching")
        from repro.graph.scc import condensation

        dag = condensation(g).dag
        chains: dict[int, list[tuple[int, int]]] = {}
        for v in range(dag.n):
            chains.setdefault(int(idx._chain_of[v]), []).append(
                (int(idx._pos_of[v]), v)
            )
        for members in chains.values():
            members.sort()
            for (p1, u), (p2, v) in zip(members, members[1:]):
                assert p2 == p1 + 1
                assert dag.has_edge(u, v)

    def test_budget_exceeded(self):
        g = random_dag(30, 120, seed=4)
        with pytest.raises(IndexBudgetExceeded):
            ChainCoverIndex(g, max_label_entries=5)

    def test_unknown_decomposition(self):
        with pytest.raises(ValueError):
            ChainCoverIndex(path_graph(3), decomposition="bogus")

    def test_khop_unsupported(self):
        idx = ChainCoverIndex(path_graph(3))
        with pytest.raises(UnsupportedQueryError):
            idx.reaches_within(0, 1, 1)


class TestPrunedLandmark:
    def test_distances_match_bfs(self):
        g = gnp_digraph(30, 0.1, seed=5)
        idx = PrunedLandmarkIndex(g)
        for s in range(g.n):
            dist = bfs_distances(g, s)
            for t in range(g.n):
                expected = float("inf") if dist[t] == UNREACHED else int(dist[t])
                assert idx.distance(s, t) == expected, (s, t)

    def test_khop_supported(self):
        idx = PrunedLandmarkIndex(path_graph(6))
        assert idx.reaches_within(0, 4, 4)
        assert not idx.reaches_within(0, 4, 3)
        with pytest.raises(ValueError):
            idx.reaches_within(0, 1, -1)

    def test_pruning_keeps_labels_small_on_star(self):
        # the hub is the first landmark; spokes need only tiny labels
        idx = PrunedLandmarkIndex(star_graph(200))
        assert idx.average_label_size() < 5

    def test_label_entries_consistent_with_storage(self):
        idx = PrunedLandmarkIndex(path_graph(10))
        assert idx.storage_bytes() == 8 * idx.label_entries
