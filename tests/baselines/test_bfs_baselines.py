"""BFS / bidirectional-BFS baseline tests (the index-free comparators)."""

import numpy as np
import pytest

from repro.baselines.bfs import BfsIndex
from repro.baselines.bibfs import BidirectionalBfsIndex
from repro.graph.generators import cycle_graph, gnp_digraph, path_graph

from tests.conftest import brute_force_khop


class TestBfsIndex:
    def test_khop_boundaries(self):
        idx = BfsIndex(path_graph(6))
        assert idx.reaches_within(0, 3, 3)
        assert not idx.reaches_within(0, 3, 2)
        assert idx.reaches_within(2, 2, 0)

    def test_negative_k(self):
        idx = BfsIndex(path_graph(3))
        with pytest.raises(ValueError):
            idx.reaches_within(0, 1, -1)

    def test_zero_storage(self):
        assert BfsIndex(path_graph(3)).storage_bytes() == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_khop_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        g = gnp_digraph(20, 0.12, seed=seed)
        idx = BfsIndex(g)
        for _ in range(80):
            s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
            k = int(rng.integers(0, 6))
            assert idx.reaches_within(s, t, k) == brute_force_khop(g, s, t, k)


class TestBidirectionalBfsIndex:
    def test_khop_boundaries(self):
        idx = BidirectionalBfsIndex(cycle_graph(6))
        assert idx.reaches_within(0, 3, 3)
        assert not idx.reaches_within(0, 3, 2)

    def test_negative_k(self):
        idx = BidirectionalBfsIndex(path_graph(3))
        with pytest.raises(ValueError):
            idx.reaches_within(0, 1, -1)

    def test_zero_storage(self):
        assert BidirectionalBfsIndex(path_graph(3)).storage_bytes() == 0

    @pytest.mark.parametrize("seed", range(3))
    def test_khop_matches_oracle(self, seed):
        rng = np.random.default_rng(100 + seed)
        g = gnp_digraph(25, 0.1, seed=seed)
        idx = BidirectionalBfsIndex(g)
        for _ in range(80):
            s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
            k = int(rng.integers(0, 7))
            assert idx.reaches_within(s, t, k) == brute_force_khop(g, s, t, k)
