"""Equivalence tests for every baseline's batch-API fallback.

The shared :class:`~repro.baselines.base.ReachabilityIndex` protocol gives
every comparator ``reaches_batch`` / ``reaches_within_batch`` via a
generic scalar loop; these tests pin the fallback to the scalar methods on
every index family the benchmark harness drives.
"""

import numpy as np
import pytest

from repro.baselines import (
    BfsIndex,
    BidirectionalBfsIndex,
    ChainCoverIndex,
    GrailIndex,
    PathTreeIndex,
    PrunedLandmarkIndex,
    PwahIndex,
    TransitiveClosureIndex,
    UnsupportedQueryError,
)
from repro.graph.generators import gnp_digraph, random_dag

BASELINES = [
    BfsIndex,
    BidirectionalBfsIndex,
    ChainCoverIndex,
    GrailIndex,
    PathTreeIndex,
    PrunedLandmarkIndex,
    PwahIndex,
    TransitiveClosureIndex,
]


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(30, 0.07, seed=41)


@pytest.fixture(scope="module")
def pairs(graph):
    return np.array(
        [(s, t) for s in range(graph.n) for t in range(graph.n)], dtype=np.int64
    )


def _build(cls, g):
    if cls is GrailIndex:
        return cls(g, num_labels=2, seed=1)
    return cls(g)


@pytest.mark.parametrize("cls", BASELINES)
def test_reaches_batch_equals_scalar(cls, graph, pairs):
    index = _build(cls, graph)
    batch = index.reaches_batch(pairs)
    assert batch.dtype == bool and batch.shape == (len(pairs),)
    for i, (s, t) in enumerate(pairs):
        assert batch[i] == index.reaches(int(s), int(t)), (cls.name, s, t)


@pytest.mark.parametrize("cls", BASELINES)
def test_reaches_within_batch_matches_scalar_support(cls, graph, pairs):
    """k-hop batch answers equal scalar ones; classic-only families raise
    the same UnsupportedQueryError either way."""
    index = _build(cls, graph)
    k = 3
    try:
        scalar_probe = index.reaches_within(0, 1, k)
    except UnsupportedQueryError:
        with pytest.raises(UnsupportedQueryError):
            index.reaches_within_batch(pairs, k)
        return
    batch = index.reaches_within_batch(pairs, k)
    assert batch[1] == scalar_probe  # pair (0, 1) sits at position 1
    for i, (s, t) in enumerate(pairs):
        assert batch[i] == index.reaches_within(int(s), int(t), k), (cls.name, s, t)


def test_batch_fallback_on_dag(pairs):
    """Second graph shape: the tree-cover/chain-cover families are
    DAG-oriented, so exercise them on one."""
    g = random_dag(25, 60, seed=42)
    dag_pairs = np.array(
        [(s, t) for s in range(g.n) for t in range(g.n)], dtype=np.int64
    )
    for cls in (PathTreeIndex, ChainCoverIndex, PwahIndex):
        index = _build(cls, g)
        batch = index.reaches_batch(dag_pairs)
        for i, (s, t) in enumerate(dag_pairs):
            assert batch[i] == index.reaches(int(s), int(t)), (cls.name, s, t)


def test_empty_and_validation():
    g = gnp_digraph(10, 0.1, seed=43)
    index = BfsIndex(g)
    assert index.reaches_batch([]).shape == (0,)
    assert index.reaches_within_batch([], 2).shape == (0,)
    with pytest.raises(ValueError):
        index.reaches_batch([(0, 10)])
