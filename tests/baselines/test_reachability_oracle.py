"""The central baseline correctness test: every comparator index answers
classic reachability exactly like BFS, on the whole graph corpus."""

import numpy as np
import pytest

from repro.baselines import (
    BfsIndex,
    BidirectionalBfsIndex,
    ChainCoverIndex,
    GrailIndex,
    PathTreeIndex,
    PrunedLandmarkIndex,
    PwahIndex,
    TransitiveClosureIndex,
)
from repro.graph.generators import gnp_digraph

from tests.conftest import all_pairs, brute_force_khop, graph_corpus

FACTORIES = {
    "bfs": BfsIndex,
    "bibfs": BidirectionalBfsIndex,
    "tc": TransitiveClosureIndex,
    "grail": lambda g: GrailIndex(g, num_labels=2, seed=1),
    "pwah": PwahIndex,
    "ptree": PathTreeIndex,
    "chain-greedy": ChainCoverIndex,
    "chain-matching": lambda g: ChainCoverIndex(g, decomposition="matching"),
    "pll": PrunedLandmarkIndex,
}


@pytest.mark.parametrize("name", FACTORIES)
def test_matches_bfs_on_corpus(name):
    for g in graph_corpus():
        index = FACTORIES[name](g)
        for s, t in all_pairs(g):
            assert index.reaches(s, t) == brute_force_khop(g, s, t, None), (
                name,
                g,
                s,
                t,
            )


@pytest.mark.parametrize("name", FACTORIES)
@pytest.mark.parametrize("seed", [10, 11])
def test_matches_bfs_on_random_graphs(name, seed):
    rng = np.random.default_rng(seed)
    g = gnp_digraph(int(rng.integers(15, 45)), float(rng.uniform(0.03, 0.2)), seed=seed)
    index = FACTORIES[name](g)
    for _ in range(150):
        s, t = int(rng.integers(0, g.n)), int(rng.integers(0, g.n))
        assert index.reaches(s, t) == brute_force_khop(g, s, t, None), (name, s, t)


@pytest.mark.parametrize("name", FACTORIES)
def test_out_of_range_rejected(name):
    g = gnp_digraph(10, 0.2, seed=0)
    index = FACTORIES[name](g)
    with pytest.raises(ValueError):
        index.reaches(0, 99)


@pytest.mark.parametrize("name", FACTORIES)
def test_storage_bytes_nonnegative(name):
    g = gnp_digraph(12, 0.15, seed=3)
    index = FACTORIES[name](g)
    assert index.storage_bytes() >= 0
