"""Failpoint framework + serving chaos suite.

Two layers.  The first pins :mod:`repro.faults` itself: registry
validation, env-spec parsing, the :func:`~repro.faults.inject` context
manager, probabilistic and bounded firing, and the cross-process token
protocol.  The second arms the serving failpoints for real and pins the
acceptance contract: through injected worker kills, worker hangs, and
kernel slowdowns, ``query_batch`` answers stay **bit-identical** to the
in-process engine (itself differentially pinned to the BFS oracle in
``tests/core/test_serve.py``) or raise the documented typed error —
never a wrong verdict — and ``collect(timeout=...)`` returns within its
bound even while a worker is hung.
"""

import time

import numpy as np
import pytest

from repro import faults
from repro.core.kreach import KReachIndex
from repro.core.serialize import save_mmap
from repro.core.serve import (
    QueryServer,
    QueryTimeout,
    ThreadQueryServer,
    UnknownTicketError,
)
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


@pytest.fixture(autouse=True)
def disarm_after():
    yield
    faults.reset()


@pytest.fixture(scope="module")
def graph():
    return gnp_digraph(60, 0.08, seed=11)


@pytest.fixture(scope="module")
def index(graph):
    return KReachIndex(graph, 3)


@pytest.fixture(scope="module")
def pairs(graph):
    return random_pairs(graph.n, 4000, rng=np.random.default_rng(5))


@pytest.fixture(scope="module")
def expected(index, pairs):
    return index.query_batch(pairs)


@pytest.fixture()
def served(tmp_path_factory, index):
    path = tmp_path_factory.mktemp("serve") / "index.kr4"
    save_mmap(index, path)
    return path


class TestRegistry:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            faults.arm("serialize.not_a_site", "error")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            faults.arm("batch.kernel_slow", "explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            faults.arm("batch.kernel_slow", "sleep", prob=1.5)

    def test_disarmed_fire_is_noop(self):
        assert faults.fire("batch.kernel_slow") is False
        assert faults.ENABLED is False

    def test_enabled_tracks_registry(self):
        faults.arm("batch.kernel_slow", "sleep")
        assert faults.ENABLED and faults.armed("batch.kernel_slow")
        faults.disarm("batch.kernel_slow")
        assert not faults.ENABLED

    def test_error_mode_raises_with_site(self):
        faults.arm("batch.kernel_slow", "error")
        with pytest.raises(faults.FaultInjected) as exc:
            faults.fire("batch.kernel_slow")
        assert exc.value.site == "batch.kernel_slow"

    def test_max_fires_bounds_triggering(self):
        faults.arm("batch.kernel_slow", "sleep", seconds=0.0, max_fires=2)
        assert faults.fire("batch.kernel_slow") is True
        assert faults.fire("batch.kernel_slow") is True
        assert faults.fire("batch.kernel_slow") is False

    def test_prob_zero_never_fires(self):
        faults.arm("batch.kernel_slow", "error", prob=0.0)
        for _ in range(50):
            assert faults.fire("batch.kernel_slow") is False

    def test_token_is_cross_registry_bound(self, tmp_path):
        token = str(tmp_path / "tok")
        faults.arm("batch.kernel_slow", "sleep", seconds=0.0, token=token)
        assert faults.fire("batch.kernel_slow") is True
        # Re-arming (as a fresh process would at import) does not reset
        # the bound: the claim file on disk is the source of truth.
        faults.arm("batch.kernel_slow", "sleep", seconds=0.0, token=token)
        assert faults.fire("batch.kernel_slow") is False

    def test_inject_restores_previous_arming(self):
        faults.arm("batch.kernel_slow", "sleep", seconds=0.0)
        with faults.inject("batch.kernel_slow", "error"):
            with pytest.raises(faults.FaultInjected):
                faults.fire("batch.kernel_slow")
        assert faults.fire("batch.kernel_slow") is True  # sleep again

    def test_inject_reports_fires(self):
        with faults.inject(
            "batch.kernel_slow", "sleep", seconds=0.0
        ) as fault:
            faults.fire("batch.kernel_slow")
            faults.fire("batch.kernel_slow")
        assert fault.fires == 2

    def test_describe_reflects_registry(self):
        faults.arm("serve.worker_hang", "hang", prob=0.25, seconds=1.0)
        snap = faults.describe()
        assert snap["serve.worker_hang"]["mode"] == "hang"
        assert snap["serve.worker_hang"]["prob"] == 0.25


class TestEnvSpec:
    def test_parse_and_arm(self):
        armed = faults.arm_from_env(
            "serve.worker_exit:exit:0.2, batch.kernel_slow:sleep"
        )
        assert armed == 2
        assert faults.describe()["serve.worker_exit"]["prob"] == 0.2

    def test_empty_spec_is_noop(self):
        assert faults.arm_from_env("") == 0

    def test_bad_entry_rejected(self):
        with pytest.raises(ValueError, match="expected site:mode"):
            faults.arm_from_env("serve.worker_exit")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            faults.arm_from_env("serve.worker_exit:exit:lots")

    def test_unknown_site_rejected_loudly(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            faults.arm_from_env("serve.wrong_name:exit")


class TestKernelFaults:
    def test_kernel_slow_keeps_answers_exact(self, index, pairs, expected):
        with faults.inject("batch.kernel_slow", "sleep", seconds=0.001):
            got = index.query_batch(pairs)
        assert np.array_equal(got, expected)

    def test_kernel_error_surfaces_typed(self, index, pairs):
        with faults.inject("batch.kernel_slow", "error"):
            with pytest.raises(faults.FaultInjected):
                index.query_batch(pairs)


class TestProcessServerChaos:
    def test_worker_exit_recovers_exact(
        self, tmp_path, served, pairs, expected
    ):
        # Exactly one worker dies (token-bound across the pool and its
        # respawned replacement); supervision re-dispatches its shards.
        with faults.inject(
            "serve.worker_exit", "exit", token=str(tmp_path / "tok")
        ):
            with QueryServer(served, workers=2, slot_pairs=256) as srv:
                got = srv.query_batch(pairs)
                stats = srv.stats()
        assert np.array_equal(got, expected)
        assert stats["restarts"] >= 1
        assert stats["health"] == "ok" and not stats["degraded"]

    def test_worker_hang_watchdog_recovers_exact(
        self, tmp_path, served, pairs, expected
    ):
        with faults.inject(
            "serve.worker_hang", "hang", token=str(tmp_path / "tok")
        ):
            with QueryServer(
                served, workers=2, slot_pairs=256, hang_timeout=0.75
            ) as srv:
                got = srv.query_batch(pairs)
                stats = srv.stats()
        assert np.array_equal(got, expected)
        assert stats["hangs"] >= 1 and stats["restarts"] >= 1

    def test_collect_timeout_bounds_hung_worker(
        self, tmp_path, served, pairs, expected
    ):
        # Watchdog slower than the collect bound: the deadline must not
        # wait for supervision.  The ticket stays collectable and the
        # un-bounded retry settles exactly once the watchdog recovers.
        with faults.inject(
            "serve.worker_hang", "hang", token=str(tmp_path / "tok")
        ):
            with QueryServer(
                served, workers=2, slot_pairs=256, hang_timeout=5.0
            ) as srv:
                ticket = srv.submit(pairs)
                start = time.monotonic()
                with pytest.raises(QueryTimeout):
                    srv.collect(ticket, timeout=0.4)
                assert time.monotonic() - start < 2.0
                got = srv.collect(ticket)
                assert srv.stats()["timeouts"] == 1
        assert np.array_equal(got, expected)

    def test_submit_deadline_applies_to_collect(self, served, pairs):
        with faults.inject("serve.worker_hang", "hang"):
            with QueryServer(
                served,
                workers=1,
                slot_pairs=256,
                hang_timeout=None,
                shutdown_grace=0.2,
            ) as srv:
                ticket = srv.submit(pairs, timeout=0.3)
                with pytest.raises(QueryTimeout):
                    srv.collect(ticket)  # inherits the submit-time bound

    def test_restart_budget_degrades_to_exact_local(
        self, served, pairs, expected
    ):
        # Every worker dies on every shard and the budget is zero: the
        # pool must fall back to in-process serving, not crash-loop.
        with faults.inject("serve.worker_exit", "exit"):
            with QueryServer(
                served, workers=2, slot_pairs=256, max_restarts=0
            ) as srv:
                got = srv.query_batch(pairs)
                stats = srv.stats()
                again = srv.query_batch(pairs)  # degraded submit path
        assert np.array_equal(got, expected)
        assert np.array_equal(again, expected)
        assert stats["degraded"] and stats["health"] == "degraded"

    def test_unknown_ticket_typed_error(self, served, pairs):
        with QueryServer(served, workers=1) as srv:
            ticket = srv.submit(pairs)
            srv.collect(ticket)
            with pytest.raises(UnknownTicketError):
                srv.collect(ticket)
            with pytest.raises(KeyError):  # subclass contract
                srv.collect(ticket)
            with pytest.raises(UnknownTicketError):
                srv.collect(10_000)


class TestThreadServerChaos:
    def test_hang_timeout_then_late_collect_exact(
        self, served, pairs, expected
    ):
        with faults.inject(
            "serve.worker_hang", "hang", seconds=1.0, max_fires=1
        ):
            with ThreadQueryServer(served, workers=2, shard_pairs=256) as srv:
                ticket = srv.submit(pairs)
                start = time.monotonic()
                with pytest.raises(QueryTimeout):
                    srv.collect(ticket, timeout=0.2)
                assert time.monotonic() - start < 1.0
                got = srv.collect(ticket)  # settles once the sleep ends
                assert srv.stats()["timeouts"] == 1
        assert np.array_equal(got, expected)

    def test_query_batch_timeout_roundtrip(self, served, pairs, expected):
        with ThreadQueryServer(served, workers=2) as srv:
            got = srv.query_batch(pairs, timeout=30.0)
        assert np.array_equal(got, expected)

    def test_unknown_ticket_typed_error(self, served, pairs):
        with ThreadQueryServer(served, workers=1) as srv:
            ticket = srv.submit(pairs)
            srv.collect(ticket)
            with pytest.raises(UnknownTicketError):
                srv.collect(ticket)
            with pytest.raises(KeyError):
                srv.collect(ticket)


class TestCloseEscalation:
    def test_close_kills_hung_worker(self, served, pairs):
        # A worker parked inside a shard ignores the stop sentinel; close
        # must escalate (terminate, then kill) instead of leaking it.
        with faults.inject("serve.worker_hang", "hang"):
            srv = QueryServer(
                served,
                workers=1,
                slot_pairs=256,
                hang_timeout=None,
                shutdown_grace=0.2,
            )
            srv.submit(pairs)
            time.sleep(0.3)  # let the worker enter the hang
            processes = [w.process for w in srv._workers]
            srv.close()
        assert all(not p.is_alive() for p in processes if p is not None)

    def test_close_idempotent_after_escalation(self, served, pairs):
        with faults.inject("serve.worker_hang", "hang"):
            srv = QueryServer(
                served,
                workers=1,
                slot_pairs=256,
                hang_timeout=None,
                shutdown_grace=0.2,
            )
            srv.submit(pairs)
            srv.close()
            srv.close()  # second close is a no-op, not an error
